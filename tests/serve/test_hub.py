"""TelemetryHub: versioned snapshots, throttling, attach-mode feeding."""

import json
import threading

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.serve import (
    SERVE_SCHEMA,
    StateFileWatcher,
    TelemetryHub,
    span_to_dict,
)
from repro.trace import Tracer


class TestSnapshotBus:
    def test_prepublish_state_is_a_valid_stub(self):
        state = TelemetryHub().state()
        assert state["schema"] == SERVE_SCHEMA
        assert state["version"] == 0
        for key in ("metrics", "histograms", "sweep", "fleet", "spans"):
            assert key in state

    def test_publish_bumps_version_and_builds_state(self):
        hub = TelemetryHub(wall_interval=0.0)
        hub.publish(phase="warm", sim_time=1.5, force=True)
        state = hub.state()
        assert state["version"] == 1
        assert state["phase"] == "warm"
        assert state["sim_time"] == 1.5

    def test_snapshots_are_immutable_once_built(self):
        hub = TelemetryHub(wall_interval=0.0)
        hub.update_sweep(executed=1)
        first = hub.state()
        hub.update_sweep(executed=2)
        assert first["sweep"]["executed"] == 1
        assert hub.state()["sweep"]["executed"] == 2

    def test_wall_throttle_coalesces_updates(self):
        hub = TelemetryHub(wall_interval=3600.0)
        for i in range(50):
            hub.update_sweep(executed=i)
        # First update publishes; the rest land inside the wall window.
        assert hub.version == 1
        hub.flush()
        assert hub.version == 2
        # The flush picked up every coalesced field value.
        assert hub.state()["sweep"]["executed"] == 49

    def test_sim_throttle_gates_engine_events(self):
        hub = TelemetryHub(sim_interval=0.25, wall_interval=0.0)
        for now in (0.0, 0.1, 0.2):   # one window -> one publish
            hub.on_sim_event(now)
        assert hub.version == 1
        hub.on_sim_event(0.30)
        assert hub.version == 2
        assert hub.state()["sim_time"] == 0.30

    def test_registry_and_histogram_sections(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        hist = registry.histogram("lat", base=1.0, n_buckets=4)
        for value in (1.0, 1.0, 3.0):
            hist.observe(value)
        hub = TelemetryHub(registry, wall_interval=0.0)
        hub.flush()
        state = hub.state()
        assert state["metrics"]["reqs"] == 3
        lat = state["histograms"]["lat"]
        assert lat["count"] == 3
        assert lat["p50"] == 1.0
        assert lat["p99"] == pytest.approx(3.0)

    def test_span_ring_keeps_recent_spans(self):
        tracer = Tracer()
        tracer.enable()
        for i in range(10):
            tracer.complete(f"s{i}", "cat", float(i), dur=0.5)
        hub = TelemetryHub(tracer=tracer, span_ring=3, wall_interval=0.0)
        hub.flush()
        spans = hub.state()["spans"]
        assert [s["name"] for s in spans] == ["s7", "s8", "s9"]

    def test_span_to_dict_shape(self):
        tracer = Tracer()
        tracer.enable()
        tracer.complete("a", "io", 1.0, dur=0.5, track="dev", k=1)
        d = span_to_dict(tracer.events[0])
        assert d == {"name": "a", "cat": "io", "ph": "X", "ts": 1.0,
                     "dur": 0.5, "track": "dev", "args": {"k": 1}}

    def test_fleet_provider_called_at_build_time(self):
        hub = TelemetryHub(wall_interval=0.0)
        calls = []

        def provider():
            calls.append(1)
            return {"nodes": [{"id": 0, "state": "up"}],
                    "counts": {"up": 1}}

        hub.attach_fleet_provider(provider)
        hub.flush()
        assert hub.state()["fleet"]["counts"] == {"up": 1}
        assert calls

    def test_snapstore_provider_feeds_the_tiering_section(self):
        hub = TelemetryHub(wall_interval=0.0)
        assert hub.state()["snapstore"] == {}

        def provider():
            return {"placement": "base-local", "dedup_factor": 3.2,
                    "local_bytes": 1024.0, "hdd_bytes": 0.0,
                    "remote_bytes": 4096.0, "nodes": []}

        hub.attach_snapstore_provider(provider)
        hub.flush()
        snapstore = hub.state()["snapstore"]
        assert snapstore["dedup_factor"] == 3.2
        assert snapstore["placement"] == "base-local"

    def test_wait_for_newer_wakes_on_publish(self):
        hub = TelemetryHub(wall_interval=0.0)
        got = []

        def waiter():
            got.append(hub.wait_for_newer(0, timeout=10.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        hub.flush(phase="go")
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert got[0] is not None and got[0]["phase"] == "go"

    def test_wait_for_newer_timeout_returns_none(self):
        assert TelemetryHub().wait_for_newer(0, timeout=0.01) is None

    def test_kick_wakes_without_publishing(self):
        hub = TelemetryHub()
        results = []

        def waiter():
            results.append(hub.wait_for_newer(0, timeout=30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        # Kick until the waiter wakes (it may not have blocked yet).
        for _ in range(200):
            hub.kick()
            thread.join(timeout=0.05)
            if not thread.is_alive():
                break
        assert not thread.is_alive()
        assert results == [None]  # woken bare, no newer snapshot

    def test_scrape_without_registry_renders_snapshot_metrics(self):
        hub = TelemetryHub(wall_interval=0.0)
        hub.feed_state({"version": 1, "metrics": {"x_total": 2.0}})
        text = hub.scrape()
        assert "# TYPE x_total untyped" in text
        assert "x_total 2" in text


class TestStateFileAttach:
    def test_state_file_written_atomically_and_parseable(self, tmp_path):
        path = tmp_path / "state.json"
        hub = TelemetryHub(wall_interval=0.0, state_path=path)
        hub.update_sweep(executed=4)
        hub.flush(phase="sweep")
        state = json.loads(path.read_text())
        assert state["sweep"]["executed"] == 4
        assert state["schema"] == SERVE_SCHEMA
        assert not list(tmp_path.glob("*.tmp"))

    def test_watcher_feeds_hub_and_versions_stay_monotonic(self, tmp_path):
        path = tmp_path / "state.json"
        publisher = TelemetryHub(wall_interval=0.0, state_path=path)
        consumer = TelemetryHub()
        watcher = StateFileWatcher(path, consumer, interval=0.01)

        publisher.update_sweep(executed=1)
        publisher.flush()
        assert watcher.poll_once()
        v1 = consumer.version
        publisher.update_sweep(executed=2)
        publisher.flush()
        assert watcher.poll_once()
        assert consumer.version > v1
        assert consumer.state()["sweep"]["executed"] == 2
        # Unchanged file -> no re-feed.
        assert not watcher.poll_once()

    def test_watcher_version_monotonic_across_restart(self, tmp_path):
        path = tmp_path / "state.json"
        consumer = TelemetryHub()
        watcher = StateFileWatcher(path, consumer, interval=0.01)
        path.write_text(json.dumps({"version": 50, "sweep": {}}))
        watcher.poll_once()
        assert consumer.version == 50
        # The watched run restarted from scratch (version regressed);
        # the local version must still move forward.
        path.write_text(json.dumps({"version": 1, "sweep": {}}))
        watcher.poll_once()
        assert consumer.version == 51

    def test_watcher_tolerates_missing_and_torn_files(self, tmp_path):
        path = tmp_path / "state.json"
        consumer = TelemetryHub()
        watcher = StateFileWatcher(path, consumer, interval=0.01)
        assert not watcher.poll_once()          # missing
        path.write_text('{"version": 1, "swe')  # torn
        assert not watcher.poll_once()
        path.write_text(json.dumps(
            {"schema": SERVE_SCHEMA + 1, "version": 9}))
        assert not watcher.poll_once()          # newer schema refused
        assert consumer.version == 0


class FakeEngine:
    def __init__(self):
        self.events_processed = 0


class TestThroughputSection:
    def test_stub_and_engineless_states_have_empty_throughput(self):
        assert TelemetryHub().state()["throughput"] == {}
        hub = TelemetryHub(wall_interval=0.0)
        hub.flush()
        assert hub.state()["throughput"] == {}

    def test_engine_progress_and_tenant_counters_surface(self):
        hub = TelemetryHub(wall_interval=0.0)
        engine = FakeEngine()
        counts = {0: 0, 1: 0}
        hub.attach_engine(engine)
        hub.attach_tenant_counts(counts)

        engine.events_processed = 120
        counts[0] = 7
        counts[1] = 3
        hub.flush()
        t = hub.state()["throughput"]
        assert t["events_processed"] == 120
        assert t["invocations"] == 10.0
        assert t["tenants"] == {"0": 7.0, "1": 3.0}
        # First snapshot after attach has no delta to rate against.
        assert t["events_per_sec"] == 0.0
        assert t["invocations_per_sec"] == 0.0

        engine.events_processed = 360
        counts[0] = 20
        hub.flush()
        t = hub.state()["throughput"]
        assert t["events_processed"] == 360
        assert t["invocations"] == 23.0
        assert t["events_per_sec"] > 0.0
        assert t["invocations_per_sec"] > 0.0

    def test_reattach_resets_the_rate_baseline(self):
        hub = TelemetryHub(wall_interval=0.0)
        engine = FakeEngine()
        engine.events_processed = 500
        hub.attach_engine(engine)
        hub.flush()
        hub.attach_engine(engine)   # fresh run: no stale delta
        hub.flush()
        assert hub.state()["throughput"]["events_per_sec"] == 0.0

    def test_throughput_survives_the_state_file_round_trip(self, tmp_path):
        path = tmp_path / "state.json"
        publisher = TelemetryHub(wall_interval=0.0, state_path=path)
        engine = FakeEngine()
        engine.events_processed = 42
        publisher.attach_engine(engine)
        publisher.attach_tenant_counts({2: 5})
        publisher.flush()

        consumer = TelemetryHub()
        watcher = StateFileWatcher(path, consumer, interval=0.01)
        assert watcher.poll_once()
        t = consumer.state()["throughput"]
        assert t["events_processed"] == 42
        assert t["tenants"] == {"2": 5.0}
