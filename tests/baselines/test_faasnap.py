"""FaaSnap: coalescing, inflation, zero-region filtering, dedup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.faasnap import FaaSnap, _subtract, coalesce
from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.workloads.trace import generate_trace, working_set_pages


class TestCoalesce:
    def test_adjacent_merge(self):
        assert coalesce([1, 2, 3], 0) == [(1, 3)]

    def test_gap_within_threshold_bridged(self):
        # Pages 2, 3, 4 form a 3-page gap between WS pages 1 and 5.
        assert coalesce([1, 5], 3) == [(1, 5)]
        assert coalesce([1, 5], 2) == [(1, 1), (5, 1)]

    def test_duplicates_ignored(self):
        assert coalesce([1, 1, 2], 0) == [(1, 2)]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            coalesce([1], -1)

    @settings(max_examples=100, deadline=None)
    @given(pages=st.sets(st.integers(0, 2000), max_size=300),
           threshold=st.integers(0, 32))
    def test_coalesce_properties(self, pages, threshold):
        regions = coalesce(sorted(pages), threshold)
        covered = set()
        previous_end = None
        for start, length in regions:
            assert length >= 1
            span = set(range(start, start + length))
            assert not (span & covered)
            covered |= span
            # Every region starts and ends on a WS page.
            assert start in pages and start + length - 1 in pages
            # Gaps between regions exceed the threshold.
            if previous_end is not None:
                assert start - previous_end > threshold
            previous_end = start + length
        # All WS pages covered; only gap pages added.
        assert pages <= covered
        for extra in covered - pages:
            assert any(s <= extra < s + l for s, l in regions)

    @settings(max_examples=50, deadline=None)
    @given(pages=st.sets(st.integers(0, 500), min_size=1, max_size=100),
           small=st.integers(0, 8), large=st.integers(9, 64))
    def test_bigger_threshold_fewer_regions_more_pages(self, pages, small,
                                                       large):
        few = coalesce(sorted(pages), large)
        many = coalesce(sorted(pages), small)
        assert len(few) <= len(many)
        assert (sum(l for _s, l in few) >= sum(l for _s, l in many))


class TestSubtract:
    def test_hole_in_middle(self):
        assert _subtract([(0, 10)], [(3, 4)]) == [(0, 3), (7, 3)]

    def test_no_overlap(self):
        assert _subtract([(0, 5)], [(10, 5)]) == [(0, 5)]

    def test_full_cover(self):
        assert _subtract([(2, 4)], [(0, 10)]) == []

    @settings(max_examples=50, deadline=None)
    @given(ranges=st.lists(st.tuples(st.integers(0, 300),
                                     st.integers(1, 30)), max_size=10),
           holes=st.lists(st.tuples(st.integers(0, 300),
                                    st.integers(1, 30)), max_size=10))
    def test_subtract_property(self, ranges, holes):
        def expand(spans):
            out = set()
            for start, length in spans:
                out.update(range(start, start + length))
            return out
        result = _subtract(ranges, holes)
        assert expand(result) == expand(ranges) - expand(holes)


class TestApproach:
    @pytest.fixture
    def prepared(self, tiny_profile):
        kernel = make_kernel()
        approach = FaaSnap(kernel)
        trace = generate_trace(tiny_profile, 0)
        prep = kernel.env.process(approach.prepare(tiny_profile, trace))
        kernel.env.run(prep)
        return kernel, approach, trace

    def test_exact_ws_from_mincore(self, prepared, tiny_profile):
        _k, approach, trace = prepared
        assert approach.ws_pages_exact == len(working_set_pages(trace))

    def test_ws_file_inflated_by_coalescing(self, prepared):
        _k, approach, _t = prepared
        assert approach.ws_file_pages > approach.ws_pages_exact
        assert approach.inflation_ratio > 1.0

    def test_zero_ranges_disjoint_from_regions(self, prepared):
        _k, approach, _t = prepared
        region_pages = set()
        for region in approach._regions:
            region_pages.update(range(region.guest_start,
                                      region.guest_start + region.length))
        for start, length in approach._zero_ranges:
            assert not (set(range(start, start + length)) & region_pages)

    def test_gap_threshold_zero_means_no_inflation(self, tiny_profile):
        kernel = make_kernel()
        approach = FaaSnap(kernel, gap_threshold=0)
        trace = generate_trace(tiny_profile, 0)
        prep = kernel.env.process(approach.prepare(tiny_profile, trace))
        kernel.env.run(prep)
        assert approach.inflation_ratio == 1.0

    def test_dedup_across_instances(self, tiny_profile):
        single = run_scenario(ScenarioSpec(tiny_profile, FaaSnap.name, n_instances=1))
        ten = run_scenario(ScenarioSpec(tiny_profile, FaaSnap.name, n_instances=10))
        # Page-cache sharing: memory far below 10x a single instance.
        assert ten.peak_memory_bytes < 5 * single.peak_memory_bytes

    def test_allocations_filtered_via_zero_scan(self, tiny_profile):
        result = run_scenario(ScenarioSpec(tiny_profile, FaaSnap.name))
        from repro.baselines.linux import LinuxNoRA
        nora = run_scenario(ScenarioSpec(tiny_profile, LinuxNoRA.name))
        # FaaSnap does not fetch allocation pages from the snapshot, but
        # it does read its (inflated) WS file: compare page-cache adds
        # for the snapshot ino indirectly via total read volume.
        assert (result.device_bytes_read
                < nora.device_bytes_read
                + result.extra["ws_file_pages"] * 4096
                - tiny_profile.alloc_pages * 4096 // 2)

    def test_table1_row(self):
        row = FaaSnap.table1_row()
        assert row["mechanism"] == "mincore / mmap"
        assert row["in_memory_ws_dedup"] == "Yes"
        assert row["snapshot_prescan"] == "Yes"
