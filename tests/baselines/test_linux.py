"""Vanilla Linux restore baselines."""

from repro.baselines.linux import LinuxNoRA, LinuxRA
from repro.harness.experiment import run_scenario
from repro.harness.spec import ScenarioSpec


def test_nora_issues_single_page_reads(kernel, tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, LinuxNoRA.name), kernel=kernel)
    # One request per major fault, 4 KiB each.
    assert result.device_bytes_read == result.cache_adds * 4096
    assert result.device_requests >= result.invocations[0].major_faults


def test_ra_reads_fewer_requests_more_bytes(tiny_profile):
    nora = run_scenario(ScenarioSpec(tiny_profile, LinuxNoRA.name))
    ra = run_scenario(ScenarioSpec(tiny_profile, LinuxRA.name))
    assert ra.device_requests < nora.device_requests
    assert ra.device_bytes_read > nora.device_bytes_read  # over-fetch
    assert ra.mean_e2e < nora.mean_e2e


def test_nora_fetches_exactly_touched_pages(tiny_profile):
    from repro.workloads.trace import generate_trace, working_set_pages
    result = run_scenario(ScenarioSpec(tiny_profile, LinuxNoRA.name))
    trace = generate_trace(tiny_profile, 0)
    # WS pages + ephemeral allocation pages (no PV filtering) + trigger.
    expected = len(working_set_pages(trace)) + tiny_profile.alloc_pages
    assert result.cache_adds == expected


def test_dedup_across_concurrent_instances(tiny_profile):
    single = run_scenario(ScenarioSpec(tiny_profile, LinuxNoRA.name, n_instances=1))
    ten = run_scenario(ScenarioSpec(tiny_profile, LinuxNoRA.name, n_instances=10))
    # Page-cache-backed restore: 10x instances read the data once.
    assert ten.device_bytes_read == single.device_bytes_read
    assert ten.peak_memory_bytes < 4 * single.peak_memory_bytes


def test_table1_row():
    row = LinuxRA.table1_row()
    assert row["space"] == "User-space"
    assert row["on_disk_ws_serialization"] == "No"
