"""Faast: REAP + allocator-metadata allocation filtering."""


from repro.baselines.faast import Faast
from repro.baselines.reap import REAP
from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.workloads.trace import generate_trace, working_set_pages


def test_recorded_ws_excludes_allocations(tiny_profile):
    kernel = make_kernel()
    approach = Faast(kernel)
    trace = generate_trace(tiny_profile, 0)
    prep = kernel.env.process(approach.prepare(tiny_profile, trace))
    kernel.env.run(prep)
    ws = working_set_pages(trace)
    assert approach.working_set_pages == len(ws)
    free = approach.snapshot.meta.free_gfns
    assert not (set(approach._ws_order) & free)


def test_less_io_than_reap(tiny_profile):
    reap = run_scenario(ScenarioSpec(tiny_profile, REAP.name))
    faast = run_scenario(ScenarioSpec(tiny_profile, Faast.name))
    assert faast.device_bytes_read < reap.device_bytes_read
    # Exactly the allocation pages are spared (single 4 KiB granularity).
    assert (reap.extra["ws_pages"] - faast.extra["ws_pages"]
            == tiny_profile.alloc_pages)


def test_allocation_faults_served_as_zero_pages(tiny_profile):
    kernel = make_kernel()
    approach = Faast(kernel)
    trace = generate_trace(tiny_profile, 0)
    prep = kernel.env.process(approach.prepare(tiny_profile, trace))
    kernel.env.run(prep)

    def run():
        vm = yield from approach.spawn(tiny_profile, "vm0")
        yield from vm.invoke(trace)
        return vm

    p = kernel.env.process(run())
    kernel.env.run(p)
    vm = p.value
    free_gfn = next(iter(approach.snapshot.meta.free_gfns))
    pte = vm.space.pte(vm.guest_vpn(free_gfn))
    if pte is not None:  # touched by an allocation
        assert pte.frame.content == 0


def test_still_no_dedup(tiny_profile):
    single = run_scenario(ScenarioSpec(tiny_profile, Faast.name, n_instances=1))
    ten = run_scenario(ScenarioSpec(tiny_profile, Faast.name, n_instances=10))
    assert ten.peak_memory_bytes >= 8 * single.peak_memory_bytes


def test_table1_row():
    row = Faast.table1_row()
    assert row["stateless_alloc_filtering"] == "Yes"
    assert row["snapshot_prescan"] == "Yes"
    assert row["in_memory_ws_dedup"] == "No"
