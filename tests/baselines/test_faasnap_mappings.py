"""FaaSnap's guest-memory patchwork must exactly partition guest memory."""

import pytest

from repro.baselines.faasnap import FaaSnap
from repro.harness.experiment import make_kernel
from repro.workloads.trace import generate_trace


@pytest.fixture
def spawned(tiny_profile):
    kernel = make_kernel()
    approach = FaaSnap(kernel)
    trace = generate_trace(tiny_profile, 0)
    prep = kernel.env.process(approach.prepare(tiny_profile, trace))
    kernel.env.run(prep)

    def body():
        vm = yield from approach.spawn(tiny_profile, "vm0")
        return vm

    process = kernel.env.process(body())
    kernel.env.run(process)
    return kernel, approach, process.value


def test_vmas_partition_guest_memory(spawned, tiny_profile):
    _kernel, _approach, vm = spawned
    vmas = sorted(vm.space.vmas, key=lambda v: v.start)
    cursor = vm.guest_base_vpn
    for vma in vmas:
        assert vma.start == cursor, "gap in guest memory mappings"
        cursor = vma.end
    assert cursor == vm.guest_base_vpn + tiny_profile.mem_pages


def test_vma_kinds_match_plan(spawned):
    _kernel, approach, vm = spawned
    by_name = {}
    for vma in vm.space.vmas:
        by_name.setdefault(vma.name, []).append(vma)
    assert len(by_name["ws"]) == approach.region_count
    assert len(by_name["zero"]) == len(approach._zero_ranges)
    assert by_name["snap"], "remainder must map the snapshot"
    for vma in by_name["zero"]:
        assert vma.is_anon
    for vma in by_name["ws"]:
        assert vma.file is approach._ws_file


def test_ws_vma_offsets_translate_to_ws_file(spawned):
    _kernel, approach, vm = spawned
    region = approach._regions[0]
    vma = next(v for v in vm.space.vmas
               if v.name == "ws"
               and v.start == vm.guest_base_vpn + region.guest_start)
    # The first guest page of the region maps the region's WS-file page.
    assert vma.file_index(vma.start) == region.ws_offset


def test_ws_file_content_matches_snapshot(spawned):
    _kernel, approach, _vm = spawned
    for region in approach._regions[:10]:
        for i in range(region.length):
            assert (approach._ws_file.content(region.ws_offset + i)
                    == approach.snapshot.file.content(
                        region.guest_start + i))
