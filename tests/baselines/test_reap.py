"""REAP: record fidelity, WS serialization, the no-dedup property."""

import pytest

from repro.baselines.reap import REAP
from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.workloads.trace import generate_trace, working_set_pages


@pytest.fixture
def prepared(tiny_profile):
    kernel = make_kernel()
    approach = REAP(kernel)
    trace = generate_trace(tiny_profile, 0)
    prep = kernel.env.process(approach.prepare(tiny_profile, trace))
    kernel.env.run(prep)
    return kernel, approach, trace


def test_record_captures_ws_plus_allocations(prepared, tiny_profile):
    _kernel, approach, trace = prepared
    ws = working_set_pages(trace)
    # REAP's recorded set includes the ephemeral allocation pages (§2.2:
    # it cannot tell them apart), in fault order.
    assert approach.working_set_pages == len(ws) + tiny_profile.alloc_pages
    assert approach._ws_order[: len(ws)] != sorted(
        approach._ws_order[: len(ws)])  # temporal, not spatial, order


def test_ws_file_serialized_with_snapshot_contents(prepared):
    _kernel, approach, _trace = prepared
    for pos, gfn in enumerate(approach._ws_order[:64]):
        assert (approach._ws_file.content(pos)
                == approach.snapshot.file.content(gfn))


def test_record_order_matches_first_touch_order(prepared):
    _kernel, approach, trace = prepared
    ws = working_set_pages(trace)
    recorded_ws = [g for g in approach._ws_order if g in set(ws)]
    assert recorded_ws == ws


def test_invocation_installs_only_anonymous_memory(tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, REAP.name, n_instances=1))
    inv = result.invocations[0]
    # Every touched page is private anon; nothing shared.
    assert inv.anon_bytes_at_end >= inv.pages_touched * 4096


def test_no_dedup_across_instances(tiny_profile):
    single = run_scenario(ScenarioSpec(tiny_profile, REAP.name, n_instances=1))
    ten = run_scenario(ScenarioSpec(tiny_profile, REAP.name, n_instances=10))
    # 10 instances re-read the WS file 10 times (direct I/O, no cache)
    # and hold 10 private copies.
    assert ten.device_bytes_read >= 9 * single.device_bytes_read
    assert ten.peak_memory_bytes >= 8 * single.peak_memory_bytes


def test_prefetch_suppresses_most_demand_faults(tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, REAP.name, n_instances=1))
    inv = result.invocations[0]
    # The preemptive installs should beat the vCPU to most pages.
    assert inv.uffd_faults < inv.pages_touched / 2


def test_content_fidelity_end_to_end(tiny_profile):
    """Pages the guest reads must carry the snapshot's bytes."""
    kernel = make_kernel()
    approach = REAP(kernel)
    trace = generate_trace(tiny_profile, 0)
    prep = kernel.env.process(approach.prepare(tiny_profile, trace))
    kernel.env.run(prep)

    def run():
        vm = yield from approach.spawn(tiny_profile, "vm0")
        yield from vm.invoke(trace)
        return vm

    p = kernel.env.process(run())
    kernel.env.run(p)
    vm = p.value
    ws = working_set_pages(trace)
    for gfn in ws[:64]:
        pte = vm.space.pte(vm.guest_vpn(gfn))
        assert pte is not None
        assert pte.frame.content == approach.snapshot.file.content(gfn)


def test_prefetcher_survives_oom_and_counts_abort(prepared, tiny_profile):
    """An exhausted frame pool mid-stream must abort the speculative
    prefetch (counted), not kill the run — stragglers fall through to
    the demand handler."""
    from repro.mm.frames import OutOfMemory
    from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM

    kernel, approach, _trace = prepared
    uffd = kernel.new_uffd()
    vm = MicroVM(kernel, approach.snapshot, vm_id="oom-vm")
    vm.space.mmap(approach.snapshot.mem_pages, uffd=uffd,
                  at=GUEST_BASE_VPN, name="guest-mem")

    calls = {"n": 0}
    real = vm.space.install_anon

    def flaky(vpn, content=0, writable=True):
        calls["n"] += 1
        if calls["n"] == 3:
            raise OutOfMemory("frame pool exhausted")
        return real(vpn, content=content, writable=writable)

    vm.space.install_anon = flaky
    prefetch = kernel.env.process(approach._prefetcher(vm, uffd),
                                  name="prefetch")
    kernel.env.run(prefetch)  # raises if the generator died on the OOM
    assert approach.prefetch_aborts == 1
    assert vm.space.pte_present(vm.guest_vpn(approach._ws_order[0]))


def test_table1_row():
    row = REAP.table1_row()
    assert row["mechanism"] == "userfaultfd"
    assert row["on_disk_ws_serialization"] == "Yes"
    assert row["in_memory_ws_dedup"] == "No"
    assert row["stateless_alloc_filtering"] == "No"
