"""Compiled-tier equivalence fuzzing.

The compile tier (:mod:`repro.ebpf.compile`) promises *observational
equivalence* with the interpreter for every verifier-accepted program:
same :class:`ExecutionResult` (r0 and insn_count), same runtime faults
with the same messages, same final map states, same ring-buffer record
streams.  This harness generates random programs with a seeded RNG
until 200 of them pass the verifier, then runs each accepted program
through both tiers — fresh maps per tier — over a shared context
sequence and compares everything observable.

Two real programs (capture and prefetch-guard) ride along as
deterministic cases covering the ring-buffer write path and the
array-map state machine the random space reaches only occasionally.
"""

import random
import struct

from repro.core.progs import (
    build_capture_program,
    build_prefetch_program,
    make_events_ringbuf,
    make_groups_map,
    make_state_map,
)
from repro.ebpf.asm import Program, assemble
from repro.ebpf.insn import (
    ALU_OPS,
    Alu,
    Call,
    Exit,
    JMP_OPS,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.interp import Interpreter, RuntimeFault, pack_u64
from repro.ebpf.maps import ArrayMap, HashMap, RingBufMap
from repro.ebpf.verifier import VerificationError, Verifier

CTX_SIZE = 16
PROGRAM_LEN = 12
TARGET_ACCEPTED = 200
MAX_ATTEMPTS = 60_000
BUDGET = 50_000

_IMMS = (-16, -8, -4, -1, 0, 1, 4, 8, 16, 512, 1 << 40)
_WIDTHS = (1, 2, 4, 8)
_HELPERS = (1, 2, 3, 5, 6, 130)  # map ops, ktime, printk, ringbuf_output
_ALU = sorted(ALU_OPS - {"neg"})
_JCC = sorted(JMP_OPS - {"ja"})


def _random_insn(rng: random.Random):
    kind = rng.randrange(8)
    reg = rng.randrange(11)
    if kind == 0:
        return Alu(rng.choice(_ALU), reg, src=rng.randrange(11))
    if kind == 1:
        return Alu(rng.choice(_ALU), reg, imm=rng.choice(_IMMS))
    if kind == 2:
        return Jmp("ja", rng.randrange(PROGRAM_LEN + 1))
    if kind == 3:
        return Jmp(rng.choice(_JCC), rng.randrange(PROGRAM_LEN + 1),
                   dst=reg, imm=rng.choice(_IMMS))
    if kind == 4:
        return Load(reg, rng.randrange(11), rng.choice(_IMMS),
                    rng.choice(_WIDTHS))
    if kind == 5:
        if rng.random() < 0.5:
            return Store(reg, rng.choice(_IMMS), imm=rng.choice(_IMMS),
                         width=rng.choice(_WIDTHS))
        return Store(reg, rng.choice(_IMMS), src=rng.randrange(11),
                     width=rng.choice(_WIDTHS))
    if kind == 6:
        return LoadMapFd(reg, rng.choice(("h", "a", "rb")))
    return Call(rng.choice(_HELPERS))


def _build(insns) -> Program:
    """Assemble with *fresh* maps so each tier mutates its own state."""
    maps = {"h": HashMap("h", key_size=8, value_size=8, max_entries=8),
            "a": ArrayMap("a", value_size=16, max_entries=4),
            "rb": RingBufMap("rb", value_size=8, max_entries=16)}
    return assemble("fuzz", list(insns) + [Exit()], maps=maps)


def _map_state(bpf_map):
    """Everything userspace could observe about a map, as comparable
    plain data (including what the ring's consumer would read)."""
    if isinstance(bpf_map, RingBufMap):
        return ("ringbuf", bpf_map.consume(), bpf_map.dropped)
    if isinstance(bpf_map, HashMap):
        return ("hash", {bytes(k): bytes(v or b"")
                         for k, v in ((k, bpf_map.lookup(k))
                                      for k in bpf_map.keys())})
    if isinstance(bpf_map, ArrayMap):
        return ("array", [bytes(bpf_map.lookup(struct.pack("<I", i)))
                          for i in range(bpf_map.max_entries)])
    raise AssertionError(f"unknown map kind {bpf_map!r}")


def _run_tier(program: Program, ctxs, use_compiled: bool):
    """One tier's full observable behaviour over a context sequence."""
    interp = Interpreter()
    interp.use_compiled = use_compiled
    if use_compiled:
        assert interp.prepare(program) is not None, (
            f"verified program failed to compile:\n{program.insns}")
    outcomes = []
    for ctx in ctxs:
        try:
            result = interp.run(program, ctx, budget=BUDGET)
        except RuntimeFault as fault:
            outcomes.append(("fault", str(fault)))
        else:
            outcomes.append(("ok", result.r0, result.insn_count))
    states = {name: _map_state(m) for name, m in program.maps.items()}
    return outcomes, states, list(interp.printk_log)


def _assert_equivalent(insns, ctxs):
    compiled = _run_tier(_build(insns), ctxs, use_compiled=True)
    interpreted = _run_tier(_build(insns), ctxs, use_compiled=False)
    assert compiled == interpreted, (
        f"tier divergence on:\n{list(insns)}\n"
        f"compiled:    {compiled}\ninterpreted: {interpreted}")


def test_fuzzed_programs_equivalent_across_tiers():
    rng = random.Random(0xEB9F)
    verifier = Verifier(ctx_size=CTX_SIZE)
    ctxs = [pack_u64(7, 9), pack_u64(0, 0), pack_u64(1 << 40, 3)]
    accepted = 0
    for _ in range(MAX_ATTEMPTS):
        insns = [_random_insn(rng)
                 for _ in range(rng.randrange(1, PROGRAM_LEN))]
        try:
            verifier.verify(_build(insns))
        except VerificationError:
            continue
        _assert_equivalent(insns, ctxs)
        accepted += 1
        if accepted >= TARGET_ACCEPTED:
            break
    assert accepted >= TARGET_ACCEPTED, (
        f"only {accepted} verifier-accepted programs in "
        f"{MAX_ATTEMPTS} attempts; widen the generator")


def test_capture_program_equivalent_across_tiers():
    """Ring-buffer stream equivalence on the real capture program."""
    ino = 4242

    def run_tier(use_compiled):
        interp = Interpreter(time_ns=iter(range(0, 10_000, 7)).__next__)
        interp.use_compiled = use_compiled
        events = make_events_ringbuf("ev", max_entries=64)
        program = build_capture_program(ino, events)
        outcomes = [interp.run(program, struct.pack("<QQ", i_no, index))
                    for index in range(80)
                    for i_no in (ino, ino + 1)]  # hits and filtered inos
        return outcomes, events.consume(), events.dropped

    assert run_tier(True) == run_tier(False)


def test_prefetch_program_equivalent_across_tiers():
    """Array-map walk + kfunc calls + done-flag state machine."""
    from repro.core.kfuncs import SNAPBPF_PREFETCH
    from repro.ebpf.kfunc import KfuncRegistry

    ino = 777

    def run_tier(use_compiled):
        calls = []
        kfuncs = KfuncRegistry()
        kfuncs.register(SNAPBPF_PREFETCH,
                        lambda ino_, start, count: calls.append(
                            (ino_, start, count)) or 0, n_args=3)
        interp = Interpreter(kfuncs=kfuncs)
        interp.use_compiled = use_compiled
        groups = make_groups_map("groups", n_groups=3)
        for index, (start, count) in enumerate(((10, 4), (64, 32), (2, 1))):
            groups.update_u64s(index, start, count)
        state = make_state_map("state")
        program = build_prefetch_program(ino, groups, state)
        # First fire walks and detaches; repeats take the done-flag exit.
        outcomes = [interp.run(program, struct.pack("<QQ", ino, 0))
                    for _ in range(3)]
        return outcomes, calls, _map_state(state)

    assert run_tier(True) == run_tier(False)
