"""Verifier: the sandbox guarantees the paper's design leans on.

Each test is one accept/reject decision; rejects assert on the reason so
regressions in the abstract interpreter are visible.
"""

import pytest

from repro.ebpf.asm import (
    Label,
    assemble,
    alu,
    alui,
    call,
    call_kfunc,
    exit_,
    jcond,
    jmp,
    ldmap,
    load,
    mov,
    movi,
    store,
    storei,
)
from repro.ebpf.helpers import (
    BPF_FUNC_KTIME_GET_NS,
    BPF_FUNC_MAP_LOOKUP_ELEM,
    BPF_FUNC_MAP_UPDATE_ELEM,
)
from repro.ebpf.insn import R0, R1, R2, R3, R4, R6, R7, R8, R10
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.verifier import VerificationError, Verifier


def verify(source, maps=None, ctx_size=16, kfuncs=None):
    prog = assemble("t", source, maps=maps)
    Verifier(ctx_size=ctx_size, kfuncs=kfuncs).verify(prog)
    return prog


def reject(source, match, maps=None, ctx_size=16, kfuncs=None):
    prog = assemble("t", source, maps=maps)
    with pytest.raises(VerificationError, match=match):
        Verifier(ctx_size=ctx_size, kfuncs=kfuncs).verify(prog)


@pytest.fixture
def hmap():
    return HashMap("m", key_size=8, value_size=8)


class TestBasics:
    def test_minimal_program(self):
        verify([movi(R0, 0), exit_()])

    def test_exit_with_uninit_r0_rejected(self):
        reject([exit_()], "R0 not initialized")

    def test_fallthrough_off_end_rejected(self):
        reject([movi(R0, 0), movi(R1, 1)], "does not end with exit")

    def test_uninit_register_read_rejected(self):
        reject([mov(R0, R6), exit_()], "uninitialized")

    def test_unreachable_garbage_ok_if_not_executed(self):
        # Dead code after exit is never explored; accepted like the kernel
        # accepts unreachable-but-wellformed tails after pruning.
        verify([movi(R0, 0), exit_(), movi(R0, 1), exit_()])


class TestStack:
    def test_store_load_roundtrip(self):
        verify([
            storei(R10, -8, 77),
            load(R3, R10, -8),
            movi(R0, 0), exit_(),
        ])

    def test_uninit_stack_read_rejected(self):
        reject([load(R3, R10, -8), movi(R0, 0), exit_()],
               "uninitialized stack")

    def test_partial_init_read_rejected(self):
        reject([
            storei(R10, -8, 1, width=4),
            load(R3, R10, -8, width=8),
            movi(R0, 0), exit_(),
        ], "uninitialized stack")

    def test_overflow_rejected(self):
        reject([storei(R10, -520, 1), movi(R0, 0), exit_()],
               "out of bounds")

    def test_underflow_rejected(self):
        reject([storei(R10, 0, 1), movi(R0, 0), exit_()], "out of bounds")

    def test_fp_is_read_only(self):
        reject([alui("add", R10, 8), movi(R0, 0), exit_()], "read-only")

    def test_fp_copy_arithmetic_ok(self):
        verify([
            mov(R2, R10), alui("add", R2, -16),
            storei(R2, 0, 1),
            movi(R0, 0), exit_(),
        ])

    def test_variable_stack_offset_rejected(self):
        reject([
            movi(R3, 8),
            mov(R2, R10), alu("add", R2, R3),
            storei(R2, 0, 1),
            movi(R0, 0), exit_(),
        ], "unknown")


class TestContext:
    def test_ctx_load_in_bounds(self):
        verify([load(R6, R1, 8), movi(R0, 0), exit_()], ctx_size=16)

    def test_ctx_load_out_of_bounds(self):
        reject([load(R6, R1, 16), movi(R0, 0), exit_()], "out of bounds",
               ctx_size=16)

    def test_ctx_store_rejected(self):
        reject([storei(R1, 0, 1), movi(R0, 0), exit_()], "read-only",
               ctx_size=16)

    def test_no_ctx_means_scalar_r1(self):
        # With ctx_size 0, R1 is scalar; dereferencing it must fail.
        reject([load(R6, R1, 0), movi(R0, 0), exit_()],
               "dereference of scalar", ctx_size=0)


class TestPointers:
    def test_scalar_deref_rejected(self):
        reject([movi(R3, 1234), load(R4, R3, 0), movi(R0, 0), exit_()],
               "dereference of scalar")

    def test_pointer_multiply_rejected(self):
        reject([mov(R2, R10), alui("mul", R2, 2), movi(R0, 0), exit_()],
               "on pointer")

    def test_pointer_plus_pointer_rejected(self):
        reject([mov(R2, R10), mov(R3, R10), alu("add", R2, R3),
                movi(R0, 0), exit_()], "pointer")

    def test_pointer_as_scalar_source_rejected(self):
        reject([movi(R3, 1), alu("add", R3, R10), movi(R0, 0), exit_()],
               "pointer used as scalar")

    def test_pointer_spill_rejected(self):
        reject([mov(R2, R10), store(R10, -8, R2), movi(R0, 0), exit_()],
               "spill")


class TestMapAccess:
    def test_lookup_requires_null_check(self, hmap):
        reject([
            storei(R10, -8, 1),
            ldmap(R1, "m"), mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            load(R3, R0, 0),
            movi(R0, 0), exit_(),
        ], "NULL check", maps={"m": hmap})

    def test_lookup_with_null_check_ok(self, hmap):
        verify([
            storei(R10, -8, 1),
            ldmap(R1, "m"), mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            jcond("jeq", R0, "out", imm=0),
            load(R3, R0, 0),
            Label("out"),
            movi(R0, 0), exit_(),
        ], maps={"m": hmap})

    def test_map_value_bounds_checked(self, hmap):
        reject([
            storei(R10, -8, 1),
            ldmap(R1, "m"), mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            jcond("jeq", R0, "out", imm=0),
            load(R3, R0, 8),  # value_size is 8: offset 8 overflows
            Label("out"),
            movi(R0, 0), exit_(),
        ], "out of bounds", maps={"m": hmap})

    def test_uninit_key_buffer_rejected(self, hmap):
        reject([
            ldmap(R1, "m"), mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            movi(R0, 0), exit_(),
        ], "uninitialized", maps={"m": hmap})

    def test_key_must_be_stack_pointer(self, hmap):
        reject([
            ldmap(R1, "m"), movi(R2, 1234),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            movi(R0, 0), exit_(),
        ], "stack pointer", maps={"m": hmap})

    def test_map_arg_must_be_map_pointer(self, hmap):
        reject([
            movi(R1, 0), mov(R2, R10),
            storei(R10, -8, 1), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            movi(R0, 0), exit_(),
        ], "map", maps={"m": hmap})

    def test_const_map_pointer_not_dereferenceable(self, hmap):
        reject([ldmap(R1, "m"), load(R2, R1, 0), movi(R0, 0), exit_()],
               "not", maps={"m": hmap})

    def test_update_full_signature(self, hmap):
        verify([
            storei(R10, -8, 1),
            storei(R10, -16, 2),
            ldmap(R1, "m"),
            mov(R2, R10), alui("add", R2, -8),
            mov(R3, R10), alui("add", R3, -16),
            movi(R4, 0),
            call(BPF_FUNC_MAP_UPDATE_ELEM),
            movi(R0, 0), exit_(),
        ], maps={"m": hmap})

    def test_write_through_map_value_ok(self):
        amap = ArrayMap("a", value_size=8, max_entries=1)
        verify([
            storei(R10, -4, 0, width=4),
            ldmap(R1, "a"), mov(R2, R10), alui("add", R2, -4),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            jcond("jeq", R0, "out", imm=0),
            storei(R0, 0, 1),
            Label("out"),
            movi(R0, 0), exit_(),
        ], maps={"a": amap})


class TestCalls:
    def test_unknown_helper_rejected(self):
        reject([call(999), movi(R0, 0), exit_()], "unknown BPF helper")

    def test_caller_saved_clobbered(self):
        reject([
            movi(R1, 1),
            call(BPF_FUNC_KTIME_GET_NS),
            mov(R2, R1),  # R1 was clobbered by the call
            movi(R0, 0), exit_(),
        ], "uninitialized")

    def test_callee_saved_survive(self):
        verify([
            movi(R6, 1), movi(R7, 2), movi(R8, 3),
            call(BPF_FUNC_KTIME_GET_NS),
            mov(R2, R6), mov(R3, R7), mov(R4, R8),
            movi(R0, 0), exit_(),
        ])

    def test_unregistered_kfunc_rejected(self):
        reject([movi(R1, 1), call_kfunc("snapbpf_prefetch"),
                movi(R0, 0), exit_()], "unregistered kfunc")

    def test_registered_kfunc_ok(self):
        kfuncs = KfuncRegistry()
        kfuncs.register("snapbpf_prefetch", lambda a, b, c: 0, n_args=3)
        verify([
            movi(R1, 1), movi(R2, 2), movi(R3, 3),
            call_kfunc("snapbpf_prefetch"),
            movi(R0, 0), exit_(),
        ], kfuncs=kfuncs)

    def test_kfunc_pointer_arg_rejected(self):
        kfuncs = KfuncRegistry()
        kfuncs.register("k", lambda a: 0, n_args=1)
        reject([mov(R1, R10), call_kfunc("k"), movi(R0, 0), exit_()],
               "must be scalar", kfuncs=kfuncs)


class TestControlFlow:
    def test_bounded_loop_verifies(self):
        verify([
            movi(R6, 0),
            Label("top"),
            jcond("jge", R6, "done", imm=10),
            alui("add", R6, 1),
            jmp("top"),
            Label("done"),
            movi(R0, 0), exit_(),
        ])

    def test_branch_states_merge(self):
        verify([
            load(R6, R1, 0),
            jcond("jeq", R6, "a", imm=0),
            movi(R7, 1),
            jmp("join"),
            Label("a"),
            movi(R7, 2),
            Label("join"),
            mov(R0, R7), exit_(),
        ])

    def test_r0_init_on_one_path_only_rejected(self):
        reject([
            load(R6, R1, 0),
            jcond("jeq", R6, "skip", imm=0),
            movi(R0, 1),
            Label("skip"),
            exit_(),
        ], "R0 not initialized")

    def test_comparison_on_unchecked_map_value_rejected(self, hmap):
        reject([
            storei(R10, -8, 1),
            ldmap(R1, "m"), mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            jcond("jgt", R0, "out", imm=5),  # only ==/!= 0 is legal
            Label("out"),
            movi(R0, 0), exit_(),
        ], "unchecked", maps={"m": hmap})
