"""Assembler: label resolution, validation, instruction constructors."""

import pytest

from repro.ebpf.asm import (
    AssemblyError,
    Label,
    assemble,
    exit_,
    jcond,
    jmp,
    ldmap,
    movi,
)
from repro.ebpf.insn import Alu, Jmp
from repro.ebpf.maps import HashMap


def test_label_resolution():
    prog = assemble("p", [
        jmp("end"),
        movi(0, 1),
        Label("end"),
        movi(0, 0),
        exit_(),
    ])
    assert isinstance(prog.insns[0], Jmp)
    assert prog.insns[0].target == 2


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("p", [Label("a"), Label("a"), exit_()])


def test_unresolved_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("p", [jmp("nowhere"), exit_()])


def test_empty_program_rejected():
    with pytest.raises(AssemblyError):
        assemble("p", [])
    with pytest.raises(AssemblyError):
        assemble("p", [Label("only")])


def test_non_instruction_rejected():
    with pytest.raises(AssemblyError):
        assemble("p", ["mov r0, 1", exit_()])


def test_absolute_int_targets_allowed():
    prog = assemble("p", [jcond("jeq", 0, 2, imm=0), movi(0, 1), exit_()])
    assert prog.insns[0].target == 2


def test_map_reference_must_exist():
    with pytest.raises(AssemblyError):
        assemble("p", [ldmap(1, "ghost"), exit_()])
    m = HashMap("m")
    prog = assemble("p", [ldmap(1, "m"), movi(0, 0), exit_()],
                    maps={"m": m})
    assert prog.map_named("m") is m
    with pytest.raises(KeyError):
        prog.map_named("ghost")


def test_insn_validation():
    with pytest.raises(ValueError):
        Alu("mov", 0)  # neither src nor imm
    with pytest.raises(ValueError):
        Alu("mov", 0, src=1, imm=2)  # both
    with pytest.raises(ValueError):
        Alu("bogus", 0, imm=1)
    with pytest.raises(ValueError):
        Alu("mov", 11, imm=1)  # register out of range
    with pytest.raises(ValueError):
        Jmp("jeq", 0)  # missing dst
    with pytest.raises(ValueError):
        jcond("jeq", 0, 0)  # neither src nor imm


def test_program_len():
    prog = assemble("p", [movi(0, 0), exit_()])
    assert len(prog) == 2
