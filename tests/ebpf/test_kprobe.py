"""Kprobe manager: hook declaration, attach-time verification, dispatch,
and the self-detach convention the prefetch program uses."""

import pytest

from repro.ebpf.asm import assemble, exit_, load, movi
from repro.ebpf.insn import R0, R6, R1
from repro.ebpf.interp import pack_u64
from repro.ebpf.kprobe import RET_DETACH_SELF, KprobeError, KprobeManager


def trivial_program(name="p", ret=0):
    return assemble(name, [movi(R0, ret), exit_()])


@pytest.fixture
def kp():
    manager = KprobeManager()
    manager.declare_hook("add_to_page_cache_lru", 16)
    return manager


def test_declare_twice_rejected(kp):
    with pytest.raises(KprobeError):
        kp.declare_hook("add_to_page_cache_lru", 16)


def test_unknown_hook_rejected(kp):
    with pytest.raises(KprobeError):
        kp.attach("no_such_fn", trivial_program())
    with pytest.raises(KprobeError):
        kp.fire("no_such_fn", b"")


def test_attach_verifies(kp):
    bad = assemble("bad", [exit_()])  # R0 uninitialized
    with pytest.raises(Exception):
        kp.attach("add_to_page_cache_lru", bad)
    assert kp.attached("add_to_page_cache_lru") == []


def test_attach_fire_detach(kp):
    prog = assemble("reader", [load(R6, R1, 0), movi(R0, 0), exit_()])
    kp.attach("add_to_page_cache_lru", prog)
    cost = kp.fire("add_to_page_cache_lru", pack_u64(1, 2))
    assert cost > 0
    kp.detach("add_to_page_cache_lru", prog)
    assert kp.fire("add_to_page_cache_lru", pack_u64(1, 2)) == 0.0


def test_double_attach_rejected(kp):
    prog = trivial_program()
    kp.attach("add_to_page_cache_lru", prog)
    with pytest.raises(KprobeError):
        kp.attach("add_to_page_cache_lru", prog)


def test_detach_unattached_rejected(kp):
    with pytest.raises(KprobeError):
        kp.detach("add_to_page_cache_lru", trivial_program())


def test_ctx_size_enforced_on_fire(kp):
    kp.attach("add_to_page_cache_lru", trivial_program())
    with pytest.raises(KprobeError):
        kp.fire("add_to_page_cache_lru", b"\0" * 8)


def test_fire_without_programs_is_free(kp):
    assert kp.fire("add_to_page_cache_lru", pack_u64(0, 0)) == 0.0
    assert kp.hook("add_to_page_cache_lru").fire_count == 1


def test_multiple_programs_all_run(kp):
    p1, p2 = trivial_program("p1"), trivial_program("p2")
    kp.attach("add_to_page_cache_lru", p1)
    kp.attach("add_to_page_cache_lru", p2)
    single = KprobeManager()
    single.declare_hook("h", 16)
    single.attach("h", trivial_program())
    assert (kp.fire("add_to_page_cache_lru", pack_u64(0, 0))
            == pytest.approx(2 * single.fire("h", pack_u64(0, 0))))


def test_self_detach_on_ret(kp):
    prog = trivial_program("selfdetach", ret=RET_DETACH_SELF)
    kp.attach("add_to_page_cache_lru", prog)
    kp.fire("add_to_page_cache_lru", pack_u64(0, 0))
    assert kp.attached("add_to_page_cache_lru") == []


def test_side_cost_drained_into_fire(kp):
    prog = trivial_program()
    kp.attach("add_to_page_cache_lru", prog)
    kp.side_cost += 1.5e-3
    cost = kp.fire("add_to_page_cache_lru", pack_u64(0, 0))
    assert cost > 1.5e-3
    assert kp.side_cost == 0.0
