"""Instruction constructor validation (malformed programs fail early)."""

import pytest

from repro.ebpf.insn import (
    Alu,
    CallKfunc,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.helpers import HELPERS, spec_for


class TestLoadStore:
    def test_load_width_checked(self):
        with pytest.raises(ValueError):
            Load(0, 1, 0, width=3)
        Load(0, 1, 0, width=1)  # all of 1/2/4/8 are fine

    def test_load_registers_checked(self):
        with pytest.raises(ValueError):
            Load(11, 1, 0)
        with pytest.raises(ValueError):
            Load(0, -1, 0)

    def test_store_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            Store(0, 0)
        with pytest.raises(ValueError):
            Store(0, 0, src=1, imm=2)
        Store(0, 0, src=1)
        Store(0, 0, imm=2)

    def test_store_width_checked(self):
        with pytest.raises(ValueError):
            Store(0, 0, imm=1, width=16)


class TestJmp:
    def test_ja_takes_no_operands(self):
        with pytest.raises(ValueError):
            Jmp("ja", 0, dst=1)
        with pytest.raises(ValueError):
            Jmp("ja", 0, imm=1)
        Jmp("ja", 0)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            Jmp("jump_if_tuesday", 0, dst=1, imm=0)

    def test_cond_needs_dst(self):
        with pytest.raises(ValueError):
            Jmp("jeq", 0, imm=0)


class TestAlu:
    def test_neg_takes_no_source(self):
        with pytest.raises(ValueError):
            Alu("neg", 0, imm=1)
        with pytest.raises(ValueError):
            Alu("neg", 0, src=1)
        Alu("neg", 0)


class TestMisc:
    def test_loadmapfd_register_checked(self):
        with pytest.raises(ValueError):
            LoadMapFd(12, "m")

    def test_callkfunc_is_a_plain_record(self):
        assert CallKfunc("snapbpf_prefetch").name == "snapbpf_prefetch"

    def test_helper_table_consistent(self):
        for helper_id, spec in HELPERS.items():
            assert spec.helper_id == helper_id
            assert spec_for(helper_id) is spec
        with pytest.raises(KeyError):
            spec_for(12345)

    def test_insns_hashable_and_frozen(self):
        insn = Load(0, 1, 8)
        assert insn == Load(0, 1, 8)
        assert hash(insn) == hash(Load(0, 1, 8))
        with pytest.raises(AttributeError):
            insn.dst = 3
