"""Interpreter: concrete execution semantics + runtime defenses."""

import pytest

from repro.ebpf.asm import (
    Label,
    assemble,
    alu,
    alui,
    call,
    call_kfunc,
    exit_,
    jcond,
    jmp,
    ldmap,
    load,
    mov,
    movi,
    storei,
)
from repro.ebpf.helpers import (
    BPF_FUNC_KTIME_GET_NS,
    BPF_FUNC_MAP_DELETE_ELEM,
    BPF_FUNC_MAP_LOOKUP_ELEM,
    BPF_FUNC_MAP_UPDATE_ELEM,
    BPF_FUNC_TRACE_PRINTK,
)
from repro.ebpf.insn import R0, R1, R2, R3, R4, R6, R10, U64_MASK
from repro.ebpf.interp import Interpreter, RuntimeFault, pack_u64
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.maps import HashMap


def run(source, maps=None, ctx=b"", budget=None, **kwargs):
    prog = assemble("t", source, maps=maps)
    interp = Interpreter(**kwargs)
    if budget is not None:
        return interp.run(prog, ctx, budget=budget)
    return interp.run(prog, ctx)


class TestAlu:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 5, 3, 8),
        ("sub", 5, 3, 2),
        ("mul", 5, 3, 15),
        ("div", 7, 2, 3),
        ("mod", 7, 3, 1),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("lsh", 1, 4, 16),
        ("rsh", 16, 2, 4),
    ])
    def test_binops(self, op, a, b, expected):
        result = run([movi(R0, a), alui(op, R0, b), exit_()])
        assert result.r0 == expected

    def test_div_by_zero_yields_zero(self):
        # eBPF defines x/0 == 0, x%0 == x.
        assert run([movi(R0, 7), alui("div", R0, 0), exit_()]).r0 == 0
        assert run([movi(R0, 7), alui("mod", R0, 0), exit_()]).r0 == 7

    def test_wraparound_u64(self):
        result = run([movi(R0, -1), alui("add", R0, 2), exit_()])
        assert result.r0 == 1

    def test_neg(self):
        from repro.ebpf.insn import Alu
        prog = assemble("t", [movi(R0, 5), Alu("neg", R0), exit_()])
        assert Interpreter().run(prog).r0 == U64_MASK - 4

    def test_arsh_sign_extends(self):
        result = run([movi(R0, -8), alui("arsh", R0, 1), exit_()])
        assert result.r0 == (-4) & U64_MASK

    def test_reg_variant(self):
        result = run([movi(R0, 6), movi(R3, 7), alu("mul", R0, R3), exit_()])
        assert result.r0 == 42


class TestJumps:
    @pytest.mark.parametrize("op,a,b,taken", [
        ("jeq", 5, 5, True), ("jeq", 5, 6, False),
        ("jne", 5, 6, True),
        ("jgt", 6, 5, True), ("jgt", 5, 5, False),
        ("jge", 5, 5, True),
        ("jlt", 4, 5, True),
        ("jle", 5, 5, True),
        ("jset", 0b110, 0b010, True), ("jset", 0b100, 0b010, False),
    ])
    def test_unsigned_conditions(self, op, a, b, taken):
        result = run([
            movi(R6, a),
            jcond(op, R6, "yes", imm=b),
            movi(R0, 0), exit_(),
            Label("yes"),
            movi(R0, 1), exit_(),
        ])
        assert result.r0 == (1 if taken else 0)

    def test_signed_comparison(self):
        result = run([
            movi(R6, -1),
            jcond("jsgt", R6, "yes", imm=0),  # -1 > 0 signed: no
            movi(R0, 0), exit_(),
            Label("yes"), movi(R0, 1), exit_(),
        ])
        assert result.r0 == 0

    def test_unsigned_sees_minus_one_as_max(self):
        result = run([
            movi(R6, -1),
            jcond("jgt", R6, "yes", imm=0),  # u64(-1) > 0: yes
            movi(R0, 0), exit_(),
            Label("yes"), movi(R0, 1), exit_(),
        ])
        assert result.r0 == 1


class TestMemory:
    def test_stack_widths(self):
        result = run([
            storei(R10, -8, 0x1122334455667788),
            load(R0, R10, -8, width=4),
            exit_(),
        ])
        assert result.r0 == 0x55667788  # little-endian low word

    def test_ctx_read(self):
        result = run([load(R0, R1, 8), exit_()], ctx=pack_u64(1, 42))
        assert result.r0 == 42

    def test_runtime_bounds_fault(self):
        with pytest.raises(RuntimeFault):
            run([mov(R2, R10), alui("add", R2, 8),
                 storei(R2, 0, 1), movi(R0, 0), exit_()])

    def test_ctx_write_fault(self):
        with pytest.raises(RuntimeFault):
            run([storei(R1, 0, 9), movi(R0, 0), exit_()], ctx=pack_u64(1))


class TestHelpers:
    def test_map_update_and_lookup(self):
        m = HashMap("m", key_size=8, value_size=8)
        result = run([
            storei(R10, -8, 5),        # key
            storei(R10, -16, 50),      # value
            ldmap(R1, "m"),
            mov(R2, R10), alui("add", R2, -8),
            mov(R3, R10), alui("add", R3, -16),
            movi(R4, 0),
            call(BPF_FUNC_MAP_UPDATE_ELEM),
            # read it back
            ldmap(R1, "m"),
            mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            jcond("jeq", R0, "miss", imm=0),
            load(R0, R0, 0),
            exit_(),
            Label("miss"),
            movi(R0, 0), exit_(),
        ], maps={"m": m})
        assert result.r0 == 50
        assert m.lookup_u64s(5) == (50,)

    def test_lookup_miss_returns_null(self):
        m = HashMap("m", key_size=8, value_size=8)
        result = run([
            storei(R10, -8, 5),
            ldmap(R1, "m"),
            mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            jcond("jeq", R0, "null", imm=0),
            movi(R0, 1), exit_(),
            Label("null"), movi(R0, 2), exit_(),
        ], maps={"m": m})
        assert result.r0 == 2

    def test_delete(self):
        m = HashMap("m", key_size=8, value_size=8)
        m.update_u64s(5, 99)
        run([
            storei(R10, -8, 5),
            ldmap(R1, "m"),
            mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_DELETE_ELEM),
            movi(R0, 0), exit_(),
        ], maps={"m": m})
        assert m.lookup_u64s(5) is None

    def test_ktime(self):
        interp = Interpreter(time_ns=lambda: 123456)
        prog = assemble("t", [call(BPF_FUNC_KTIME_GET_NS), exit_()])
        assert interp.run(prog).r0 == 123456

    def test_trace_printk(self):
        interp = Interpreter()
        prog = assemble("t", [movi(R1, 777),
                              call(BPF_FUNC_TRACE_PRINTK),
                              movi(R0, 0), exit_()])
        interp.run(prog)
        assert interp.printk_log == [777]


class TestKfuncs:
    def test_kfunc_receives_args_and_returns(self):
        seen = []
        kfuncs = KfuncRegistry()
        kfuncs.register("probe", lambda a, b: seen.append((a, b)) or 7,
                        n_args=2)
        prog = assemble("t", [
            movi(R1, 10), movi(R2, 20),
            call_kfunc("probe"),
            exit_(),
        ])
        result = Interpreter(kfuncs=kfuncs).run(prog)
        assert result.r0 == 7
        assert seen == [(10, 20)]

    def test_registry_duplicate_and_missing(self):
        kfuncs = KfuncRegistry()
        kfuncs.register("f", lambda: 0, n_args=0)
        with pytest.raises(KeyError):
            kfuncs.register("f", lambda: 0, n_args=0)
        kfuncs.unregister("f")
        with pytest.raises(KeyError):
            kfuncs.unregister("f")
        assert "f" not in kfuncs


class TestBudget:
    def test_infinite_loop_hits_budget(self):
        with pytest.raises(RuntimeFault, match="budget"):
            run([Label("spin"), jmp("spin"), exit_()], budget=1000)

    def test_insn_count_reported(self):
        result = run([movi(R0, 0), exit_()])
        assert result.insn_count == 2

    def test_loop_insn_count(self):
        result = run([
            movi(R6, 0), movi(R0, 0),
            Label("top"),
            jcond("jge", R6, "done", imm=100),
            alui("add", R6, 1),
            jmp("top"),
            Label("done"),
            exit_(),
        ])
        assert result.insn_count == 2 + 3 * 100 + 1 + 1
