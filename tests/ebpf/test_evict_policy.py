"""The eviction-policy attach point: policy programs reorder reclaim
deterministically, the verifier polices the new ctx/helper/kfunc surface,
and the snapbpf_evict_hint kfunc pins pages."""

import pytest

from repro.core.policies import attach_evict_policy, policy_names
from repro.ebpf.asm import assemble, call, call_kfunc, exit_, load, movi
from repro.ebpf.helpers import BPF_FUNC_CACHED_PAGES
from repro.ebpf.interp import Interpreter, pack_u64
from repro.ebpf.verifier import VerificationError
from repro.mm.kernel import Kernel
from repro.mm.reclaim import (
    EVICT_CTX_SIZE,
    HINT_KEEP,
    HOOK_MM_EVICT,
    SNAPBPF_EVICT_HINT,
    register_evict_hint,
)
from repro.sim import Environment
from repro.units import MIB, PAGE_SIZE

R0, R1, R2, R3 = 0, 1, 2, 3


def _pressured_evictions(policy: str | None = None) -> list[int]:
    """Fill a 16-frame pool, force 4 evictions, return evicted indexes."""
    kernel = Kernel(env=Environment(), ram_bytes=16 * PAGE_SIZE)
    if policy is not None:
        attach_evict_policy(kernel, policy)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 16)
    kernel.env.run()
    kernel.page_cache.populate(file, 100, 4)
    kernel.env.run()
    return [index for _ino, index in kernel.reclaim.eviction_log]


def test_policy_yields_different_deterministic_eviction_sequence():
    """Acceptance criterion: an attached policy produces a different —
    but still deterministic — eviction sequence than the default LRU."""
    assert _pressured_evictions() == [0, 1, 2, 3]
    high_first = _pressured_evictions("evict-high-first")
    assert high_first == [15, 14, 13, 12]
    assert high_first == _pressured_evictions("evict-high-first")


def test_protect_head_vetoes_until_unprotected_pages_exist():
    kernel = Kernel(env=Environment(), ram_bytes=8 * PAGE_SIZE)
    attach_evict_policy(kernel, "protect-head")
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 60, 8)  # indexes 60..67 straddle 64
    kernel.env.run()
    kernel.page_cache.populate(file, 200, 2)
    kernel.env.run()
    assert kernel.reclaim.eviction_log == [(file.ino, 64), (file.ino, 65)]
    assert kernel.reclaim.stats.policy_vetoes > 0


def test_desperate_pass_overrides_vetoes_instead_of_oom():
    kernel = Kernel(env=Environment(), ram_bytes=8 * PAGE_SIZE)
    attach_evict_policy(kernel, "protect-head")
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 8)  # every page is protected
    kernel.env.run()
    kernel.page_cache.populate(file, 200, 1)  # must not raise
    kernel.env.run()
    assert kernel.reclaim.eviction_log == [(file.ino, 0)]


def test_unknown_policy_name_rejected():
    kernel = Kernel(env=Environment(), ram_bytes=64 * PAGE_SIZE)
    assert "evict-high-first" in policy_names()
    with pytest.raises(ValueError):
        attach_evict_policy(kernel, "no-such-policy")


# -- verifier rules on the new surface ----------------------------------------
def test_verifier_rejects_ctx_read_beyond_evict_ctx(kernel):
    prog = assemble("oob", [load(R2, R1, EVICT_CTX_SIZE),
                            movi(R0, 0), exit_()])
    with pytest.raises(VerificationError):
        kernel.kprobes.attach(HOOK_MM_EVICT, prog)


def test_verifier_rejects_pointer_arg_to_cached_pages(kernel):
    # R1 is still the ctx pointer when the helper is called.
    prog = assemble("ptrarg", [call(BPF_FUNC_CACHED_PAGES), exit_()])
    with pytest.raises(VerificationError):
        kernel.kprobes.attach(HOOK_MM_EVICT, prog)


def test_verifier_rejects_unregistered_kfunc(kernel):
    prog = assemble("nokfunc", [movi(R1, 0), movi(R2, 0), movi(R3, 0),
                                call_kfunc("snapbpf_no_such_kfunc"),
                                exit_()])
    with pytest.raises(VerificationError):
        kernel.kprobes.attach(HOOK_MM_EVICT, prog)


# -- the bpf_cached_pages helper ----------------------------------------------
def test_cached_pages_helper_reads_residency(kernel):
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 12)
    kernel.env.run()
    prog = assemble("count", [load(R1, R1, 0),  # r1 = ctx.ino (scalar)
                              call(BPF_FUNC_CACHED_PAGES), exit_()])
    kernel.kprobes.attach(HOOK_MM_EVICT, prog)
    verdict, cost = kernel.kprobes.fire_verdict(
        HOOK_MM_EVICT, pack_u64(file.ino, 0, 0, 0))
    assert verdict == 12
    assert cost > 0.0


def test_cached_pages_helper_without_page_stats_returns_zero():
    prog = assemble("count", [movi(R1, 7),
                              call(BPF_FUNC_CACHED_PAGES), exit_()])
    assert Interpreter().run(prog).r0 == 0


# -- the snapbpf_evict_hint kfunc ---------------------------------------------
def test_registration_idempotent(kernel):
    register_evict_hint(kernel)  # Kernel already registered it
    assert SNAPBPF_EVICT_HINT in kernel.kfuncs
    assert kernel.kfuncs.get(SNAPBPF_EVICT_HINT).n_args == 3


def test_evict_hint_rejects_unknown_hint(kernel):
    spec = kernel.kfuncs.get(SNAPBPF_EVICT_HINT)
    assert spec.func(1, 2, 99) == -22  # -EINVAL
    assert kernel.reclaim.hints.as_dict() == {}


def test_evict_hint_keep_pins_page_against_reclaim():
    kernel = Kernel(env=Environment(), ram_bytes=8 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 8)
    kernel.env.run()

    pin = assemble("pin", [movi(R1, file.ino), movi(R2, 0),
                           movi(R3, HINT_KEEP),
                           call_kfunc(SNAPBPF_EVICT_HINT), exit_()])
    kernel.kprobes.attach(HOOK_MM_EVICT, pin)
    verdict, _cost = kernel.kprobes.fire_verdict(HOOK_MM_EVICT,
                                                 pack_u64(0, 0, 0, 0))
    assert verdict == 0  # kfunc returned success
    kernel.kprobes.detach(HOOK_MM_EVICT, pin)
    assert kernel.reclaim.hints.as_dict() == {(file.ino, 0): HINT_KEEP}

    kernel.page_cache.populate(file, 100, 1)
    kernel.env.run()
    assert kernel.page_cache.resident(file.ino, 0)  # pinned by the hint
    assert not kernel.page_cache.resident(file.ino, 1)
    assert kernel.reclaim.stats.hint_keeps >= 1
