"""BPF map semantics (hash + array)."""

import struct

import pytest

from repro.ebpf.maps import ArrayMap, HashMap, MapError


class TestHashMap:
    def test_update_lookup_delete(self):
        m = HashMap("h", key_size=8, value_size=8, max_entries=4)
        key = struct.pack("<Q", 7)
        m.update(key, struct.pack("<Q", 99))
        assert struct.unpack("<Q", bytes(m.lookup(key)))[0] == 99
        m.delete(key)
        assert m.lookup(key) is None

    def test_lookup_missing_is_none(self):
        m = HashMap("h", key_size=8, value_size=8)
        assert m.lookup(b"\0" * 8) is None

    def test_delete_missing_raises(self):
        m = HashMap("h", key_size=8, value_size=8)
        with pytest.raises(MapError):
            m.delete(b"\0" * 8)

    def test_capacity_enforced(self):
        m = HashMap("h", key_size=8, value_size=8, max_entries=2)
        m.update_u64s(1, 1)
        m.update_u64s(2, 2)
        with pytest.raises(MapError):
            m.update_u64s(3, 3)
        # Updating an existing key is always allowed.
        m.update_u64s(1, 10)
        assert m.lookup_u64s(1) == (10,)

    def test_key_value_size_checked(self):
        m = HashMap("h", key_size=8, value_size=16)
        with pytest.raises(MapError):
            m.update(b"\0" * 4, b"\0" * 16)
        with pytest.raises(MapError):
            m.update(b"\0" * 8, b"\0" * 8)

    def test_items_u64(self):
        m = HashMap("h", key_size=8, value_size=16)
        m.update(struct.pack("<Q", 3), struct.pack("<QQ", 30, 31))
        m.update(struct.pack("<Q", 1), struct.pack("<QQ", 10, 11))
        assert sorted(m.items_u64()) == [(1, (10, 11)), (3, (30, 31))]

    def test_clear_and_len(self):
        m = HashMap("h")
        m.update_u64s(1, 1)
        m.update_u64s(2, 2)
        assert len(m) == 2
        m.clear()
        assert len(m) == 0

    def test_dimension_validation(self):
        with pytest.raises(MapError):
            HashMap("h", key_size=0)
        with pytest.raises(MapError):
            HashMap("h", max_entries=0)


class TestArrayMap:
    def test_preallocated(self):
        m = ArrayMap("a", value_size=8, max_entries=4)
        assert len(m) == 4
        assert bytes(m.lookup(struct.pack("<I", 0))) == b"\0" * 8

    def test_out_of_bounds_lookup_none(self):
        m = ArrayMap("a", value_size=8, max_entries=4)
        assert m.lookup(struct.pack("<I", 4)) is None

    def test_out_of_bounds_update_raises(self):
        m = ArrayMap("a", value_size=8, max_entries=4)
        with pytest.raises(MapError):
            m.update(struct.pack("<I", 4), b"\0" * 8)

    def test_delete_forbidden(self):
        m = ArrayMap("a", value_size=8, max_entries=4)
        with pytest.raises(MapError):
            m.delete(struct.pack("<I", 0))

    def test_update_in_place(self):
        m = ArrayMap("a", value_size=16, max_entries=2)
        m.update(struct.pack("<I", 1), struct.pack("<QQ", 5, 6))
        assert m.lookup_u64s(1) == (5, 6)

    def test_lookup_returns_live_storage(self):
        """In-kernel writes through a looked-up value pointer persist —
        the done-flag mechanism of the prefetch program relies on it."""
        m = ArrayMap("a", value_size=8, max_entries=1)
        value = m.lookup(struct.pack("<I", 0))
        value[0] = 7
        assert m.lookup(struct.pack("<I", 0))[0] == 7

    def test_key_size_is_u32(self):
        m = ArrayMap("a", value_size=8, max_entries=2)
        assert m.key_size == 4
