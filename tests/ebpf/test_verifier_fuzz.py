"""Verifier/interpreter soundness fuzzing.

Two properties the kernel verifier promises, checked over randomly
generated programs:

1. The verifier never crashes: any syntactically valid program is either
   accepted or rejected with a VerificationError.
2. *Soundness*: a program the verifier accepts never faults at runtime —
   no out-of-bounds access, no bad dereference, no type confusion — the
   only permitted runtime stop is the instruction budget (loops).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.asm import Program, assemble
from repro.ebpf.insn import (
    Alu,
    ALU_OPS,
    Call,
    Exit,
    JMP_OPS,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.interp import Interpreter, RuntimeFault, pack_u64
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.verifier import VerificationError, Verifier

CTX_SIZE = 16
PROGRAM_LEN = 12

regs = st.integers(0, 10)
imms = st.sampled_from([-16, -8, -4, -1, 0, 1, 4, 8, 16, 512, 1 << 40])
widths = st.sampled_from([1, 2, 4, 8])
targets = st.integers(0, PROGRAM_LEN)  # may be out of range: verifier's job
helper_ids = st.sampled_from([1, 2, 3, 5, 6, 99])


def alu_insns():
    reg_variant = st.builds(
        lambda op, dst, src: Alu(op, dst, src=src),
        st.sampled_from(sorted(ALU_OPS - {"neg"})), regs, regs)
    imm_variant = st.builds(
        lambda op, dst, imm: Alu(op, dst, imm=imm),
        st.sampled_from(sorted(ALU_OPS - {"neg"})), regs, imms)
    neg = st.builds(lambda dst: Alu("neg", dst), regs)
    return st.one_of(reg_variant, imm_variant, neg)


def jmp_insns():
    ja = st.builds(lambda t: Jmp("ja", t), targets)
    cond = st.builds(
        lambda op, dst, t, imm: Jmp(op, t, dst=dst, imm=imm),
        st.sampled_from(sorted(JMP_OPS - {"ja"})), regs, targets, imms)
    return st.one_of(ja, cond)


insn_strategy = st.one_of(
    alu_insns(),
    jmp_insns(),
    st.builds(Load, regs, regs, imms, widths),
    st.builds(lambda dst, off, imm, width: Store(dst, off, imm=imm,
                                                 width=width),
              regs, imms, imms, widths),
    st.builds(lambda dst, off, src, width: Store(dst, off, src=src,
                                                 width=width),
              regs, imms, regs, widths),
    st.builds(LoadMapFd, regs, st.sampled_from(["h", "a"])),
    st.builds(Call, helper_ids),
)

program_strategy = st.lists(insn_strategy, min_size=1,
                            max_size=PROGRAM_LEN - 1)


def build(insns) -> Program:
    maps = {"h": HashMap("h", key_size=8, value_size=8),
            "a": ArrayMap("a", value_size=16, max_entries=4)}
    return assemble("fuzz", list(insns) + [Exit()], maps=maps)


@settings(max_examples=400, deadline=None)
@given(insns=program_strategy)
def test_verifier_never_crashes(insns):
    program = build(insns)
    try:
        Verifier(ctx_size=CTX_SIZE).verify(program)
    except VerificationError:
        pass  # rejection is a valid outcome


@settings(max_examples=400, deadline=None)
@given(insns=program_strategy)
def test_verified_programs_never_fault(insns):
    program = build(insns)
    try:
        Verifier(ctx_size=CTX_SIZE).verify(program)
    except VerificationError:
        return  # rejected: nothing to run
    try:
        result = Interpreter().run(program, pack_u64(7, 9), budget=50_000)
    except RuntimeFault as fault:
        assert "budget" in str(fault), (
            f"verifier soundness hole: accepted program faulted with "
            f"{fault!r}:\n{program.insns}")
    else:
        assert isinstance(result.r0, int)
