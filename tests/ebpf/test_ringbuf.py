"""RingBufMap: reserve/commit semantics, verifier rules, interpreter."""

import pytest

from repro.ebpf.asm import (
    alui,
    assemble,
    call,
    exit_,
    ldmap,
    mov,
    movi,
    store,
    storei,
)
from repro.ebpf.helpers import (
    BPF_FUNC_MAP_LOOKUP_ELEM,
    BPF_FUNC_MAP_UPDATE_ELEM,
    BPF_FUNC_RINGBUF_OUTPUT,
)
from repro.ebpf.insn import R0, R1, R2, R3, R4, R10
from repro.ebpf.interp import Interpreter
from repro.ebpf.maps import HashMap, MapError, RingBufMap
from repro.ebpf.verifier import VerificationError, Verifier


class TestReserveCommit:
    def test_committed_records_consume_in_order(self):
        ring = RingBufMap("r", value_size=8)
        for byte in (b"a", b"b", b"c"):
            rec = ring.reserve()
            rec.data[:1] = byte
            ring.commit(rec)
        assert [r[:1] for r in ring.consume()] == [b"a", b"b", b"c"]
        assert ring.consume() == []

    def test_consumer_stops_at_first_pending_record(self):
        ring = RingBufMap("r", value_size=8)
        first = ring.reserve()
        second = ring.reserve()
        ring.commit(second)  # committed out of reservation order
        assert ring.consume() == []  # head still pending
        ring.commit(first)
        assert len(ring.consume()) == 2

    def test_discarded_records_are_skipped(self):
        ring = RingBufMap("r", value_size=8)
        keep = ring.reserve()
        keep.data[:1] = b"k"
        drop = ring.reserve()
        ring.commit(keep)
        ring.discard(drop)
        records = ring.consume()
        assert len(records) == 1 and records[0][:1] == b"k"

    def test_full_ring_drops_and_counts(self):
        ring = RingBufMap("r", value_size=8, max_entries=2)
        assert ring.reserve() is not None
        assert ring.reserve() is not None
        assert ring.reserve() is None
        assert ring.dropped == 1

    def test_consume_frees_capacity(self):
        ring = RingBufMap("r", value_size=8, max_entries=1)
        ring.commit(ring.reserve())
        assert len(ring.consume()) == 1
        assert ring.reserve() is not None

    def test_double_commit_rejected(self):
        ring = RingBufMap("r", value_size=8)
        rec = ring.reserve()
        ring.commit(rec)
        with pytest.raises(MapError):
            ring.commit(rec)
        with pytest.raises(MapError):
            ring.discard(rec)

    def test_wrong_reserve_size_rejected(self):
        ring = RingBufMap("r", value_size=8)
        with pytest.raises(MapError):
            ring.reserve(16)

    def test_output_is_reserve_copy_commit(self):
        ring = RingBufMap("r", value_size=8)
        assert ring.output(b"12345678") == 0
        assert ring.consume() == [b"12345678"]

    def test_output_on_full_ring_returns_enospc(self):
        ring = RingBufMap("r", value_size=8, max_entries=1)
        assert ring.output(b"x" * 8) == 0
        assert ring.output(b"y" * 8) == -1
        assert ring.dropped == 1

    def test_max_records_cap(self):
        ring = RingBufMap("r", value_size=8)
        for _ in range(5):
            ring.output(b"z" * 8)
        assert len(ring.consume(max_records=3)) == 3
        assert len(ring.consume()) == 2

    def test_no_random_access(self):
        ring = RingBufMap("r", value_size=8)
        with pytest.raises(MapError):
            ring.lookup(b"")
        with pytest.raises(MapError):
            ring.update(b"", b"x" * 8)
        with pytest.raises(MapError):
            ring.delete(b"")
        with pytest.raises(MapError):
            ring.keys()


def output_prog(ring, fill_bytes=8):
    """8-byte stack record -> bpf_ringbuf_output(ring, &rec)."""
    return assemble("rb_out", [
        storei(R10, -8, 0xAB, width=fill_bytes),
        ldmap(R1, "ring"),
        mov(R2, R10), alui("add", R2, -8),
        call(BPF_FUNC_RINGBUF_OUTPUT),
        movi(R0, 0),
        exit_(),
    ], maps={"ring": ring})


class TestVerifierRules:
    def test_output_on_ringbuf_accepted(self):
        Verifier().verify(output_prog(RingBufMap("ring", value_size=8)))

    def test_output_on_hash_map_rejected(self):
        prog = output_prog(HashMap("ring", key_size=8, value_size=8))
        with pytest.raises(VerificationError, match="incompatible with hash"):
            Verifier().verify(prog)

    def test_lookup_on_ringbuf_rejected(self):
        ring = RingBufMap("ring", value_size=8)
        prog = assemble("rb_lookup", [
            storei(R10, -8, 0),
            ldmap(R1, "ring"),
            mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_MAP_LOOKUP_ELEM),
            movi(R0, 0),
            exit_(),
        ], maps={"ring": ring})
        with pytest.raises(VerificationError,
                           match="incompatible with ringbuf"):
            Verifier().verify(prog)

    def test_update_on_ringbuf_rejected(self):
        ring = RingBufMap("ring", value_size=8)
        prog = assemble("rb_update", [
            storei(R10, -8, 0),
            storei(R10, -16, 1),
            ldmap(R1, "ring"),
            mov(R2, R10), alui("add", R2, -8),
            mov(R3, R10), alui("add", R3, -16),
            movi(R4, 0),
            call(BPF_FUNC_MAP_UPDATE_ELEM),
            movi(R0, 0),
            exit_(),
        ], maps={"ring": ring})
        with pytest.raises(VerificationError,
                           match="incompatible with ringbuf"):
            Verifier().verify(prog)

    def test_uninitialized_record_buffer_rejected(self):
        # Only 4 of the 8 record bytes are written before the call.
        prog = output_prog(RingBufMap("ring", value_size=8), fill_bytes=4)
        with pytest.raises(VerificationError, match="uninitialized"):
            Verifier().verify(prog)

    def test_out_of_bounds_record_buffer_rejected(self):
        ring = RingBufMap("ring", value_size=8)
        prog = assemble("rb_oob", [
            storei(R10, -8, 0),
            ldmap(R1, "ring"),
            mov(R2, R10), alui("add", R2, -4),  # only 4 bytes above
            call(BPF_FUNC_RINGBUF_OUTPUT),
            movi(R0, 0),
            exit_(),
        ], maps={"ring": ring})
        with pytest.raises(VerificationError):
            Verifier().verify(prog)


class TestInterpreter:
    def test_program_output_reaches_consumer(self):
        ring = RingBufMap("ring", value_size=8)
        prog = output_prog(ring)
        Verifier().verify(prog)
        Interpreter().run(prog)
        assert ring.consume_u64s() == [(0xAB,)]

    def test_helper_returns_error_when_full(self):
        ring = RingBufMap("ring", value_size=8, max_entries=1)
        prog = assemble("rb_ret", [
            storei(R10, -8, 1),
            ldmap(R1, "ring"),
            mov(R2, R10), alui("add", R2, -8),
            call(BPF_FUNC_RINGBUF_OUTPUT),
            mov(R0, R0),  # keep helper result as exit code
            exit_(),
        ], maps={"ring": ring})
        Verifier().verify(prog)
        interp = Interpreter()
        assert interp.run(prog).r0 == 0
        assert interp.run(prog).r0 == (-1) & ((1 << 64) - 1)
        assert ring.dropped == 1
