"""Scenario runner + result cache."""

import pytest

from repro.baselines.base import approach_registry
from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.metrics.results import summarize


def test_registry_contains_all_seven_approaches():
    names = set(approach_registry())
    assert names >= {"linux-nora", "linux-ra", "reap", "faast", "faasnap",
                     "snapbpf", "pv-ptes"}


def test_run_scenario_by_name(tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, "linux-nora"))
    assert result.approach == "linux-nora"
    assert result.function == "tiny"
    assert result.n_instances == 1
    assert len(result.invocations) == 1
    assert result.mean_e2e > 0
    assert result.peak_memory_bytes > 0


def test_concurrent_instances_all_measured(tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, "linux-ra",
                                       n_instances=3))
    assert len(result.invocations) == 3
    assert {inv.vm_id for inv in result.invocations} == {"vm0", "vm1", "vm2"}
    assert result.max_e2e >= result.mean_e2e


def test_deterministic_runs(tiny_profile):
    a = run_scenario(ScenarioSpec(tiny_profile, "snapbpf"))
    b = run_scenario(ScenarioSpec(tiny_profile, "snapbpf"))
    assert a.mean_e2e == b.mean_e2e
    assert a.peak_memory_bytes == b.peak_memory_bytes
    assert a.device_requests == b.device_requests


def test_device_stats_reset_after_prepare(tiny_profile):
    # Counters cover only the timed invocation phase, not the record run.
    result = run_scenario(ScenarioSpec(tiny_profile, "reap"))
    assert result.prepare_seconds > 0
    # Invoke reads ~WS bytes, not WS + record volume.
    assert result.device_bytes_read < 3 * tiny_profile.ws_bytes


def test_hdd_device_kind(tiny_profile):
    ssd = run_scenario(ScenarioSpec(tiny_profile, "linux-nora",
                                    device_kind="ssd"))
    hdd = run_scenario(ScenarioSpec(tiny_profile, "linux-nora",
                                    device_kind="hdd"))
    assert hdd.mean_e2e > 3 * ssd.mean_e2e


def test_unknown_device_kind_rejected():
    with pytest.raises(ValueError):
        make_kernel("floppy")


def test_result_cache_memoizes(tiny_profile):
    cache = ResultCache()
    a = cache.get(ScenarioSpec(tiny_profile, "linux-nora"))
    b = cache.get(ScenarioSpec(tiny_profile, "linux-nora"))
    assert a is b
    assert len(cache) == 1
    cache.get(ScenarioSpec(tiny_profile, "linux-nora", n_instances=2))
    assert len(cache) == 2


def test_summarize_pivot(tiny_profile):
    results = [run_scenario(ScenarioSpec(tiny_profile, "linux-nora")),
               run_scenario(ScenarioSpec(tiny_profile, "snapbpf"))]
    table = summarize(results)
    assert set(table["tiny"]) == {"linux-nora", "snapbpf"}
