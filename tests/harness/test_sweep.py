"""Sweep engine: disk store, parallel determinism, warm-cache replays."""

import dataclasses
import json

import pytest

from repro.harness.experiment import ResultCache, run_scenario
from repro.harness.figures import figure_3a, figure_specs, matrix_specs
from repro.harness.report import render_figure
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec
from repro.harness.sweep import (ResultStore, SweepRunner, SweepStats,
                                 execute_spec)
from repro.mm.costs import CostModel


@pytest.fixture
def spec(tiny_profile) -> ScenarioSpec:
    return ScenarioSpec(function=tiny_profile, approach="linux-nora")


# -- ResultStore ------------------------------------------------------------

def test_store_round_trip(tmp_path, spec):
    store = ResultStore(tmp_path)
    result = run_scenario(spec)
    store.save_scenario(spec, result)
    assert len(store) == 1
    assert store.load_scenario(spec) == result


def test_store_misses_on_absent_and_corrupt_entries(tmp_path, spec):
    store = ResultStore(tmp_path)
    assert store.load_scenario(spec) is None
    store.path(spec.stable_hash()).write_text("{not json")
    assert store.load_scenario(spec) is None


def test_store_rejects_schema_and_kind_mismatch(tmp_path, spec):
    store = ResultStore(tmp_path)
    result = run_scenario(spec)
    store.save_scenario(spec, result)
    path = store.path(spec.stable_hash())

    entry = json.loads(path.read_text())
    entry["schema"] = -1
    path.write_text(json.dumps(entry))
    assert store.load_scenario(spec) is None, "old schema must be a miss"

    entry["schema"] = SCHEMA_VERSION
    entry["kind"] = "chaos"
    path.write_text(json.dumps(entry))
    assert store.load_scenario(spec) is None, "wrong kind must be a miss"


# -- ResultCache on spec hashing -------------------------------------------

def test_cache_get_memoizes_by_spec(tiny_profile):
    cache = ResultCache()
    spec = ScenarioSpec(function=tiny_profile, approach="linux-nora",
                        n_instances=2)
    a = cache.get(spec)
    b = cache.get(ScenarioSpec(function=tiny_profile,
                               approach="linux-nora", n_instances=2))
    assert a is b
    assert len(cache) == 1 and cache.executed == 1


def test_cache_get_rejects_legacy_kwargs_form(tiny_profile):
    cache = ResultCache()
    with pytest.raises(TypeError):
        cache.get(tiny_profile, "linux-nora")  # removed legacy form
    with pytest.raises(TypeError):
        cache.get(tiny_profile)


def test_cache_distinguishes_cost_models(tiny_profile):
    """Regression: the old tuple key omitted ``costs`` (and
    ``vary_inputs``), so a cost-model ablation silently reused the
    baseline's result."""
    cache = ResultCache()
    base = cache.get(ScenarioSpec(tiny_profile, "snapbpf"))
    scaled = cache.get(ScenarioSpec(tiny_profile, "snapbpf",
                                    costs=CostModel().scaled(8.0)))
    assert len(cache) == 2
    assert base is not scaled
    assert scaled.mean_e2e > base.mean_e2e


def test_cache_distinguishes_vary_inputs(tiny_profile):
    cache = ResultCache()
    cache.get(ScenarioSpec(tiny_profile, "snapbpf", n_instances=4))
    cache.get(ScenarioSpec(tiny_profile, "snapbpf", n_instances=4,
                           vary_inputs=True))
    assert len(cache) == 2


def test_cache_reads_through_store(tmp_path, spec):
    cold = ResultCache(store=ResultStore(tmp_path))
    result = cold.get(spec)
    assert cold.executed == 1

    warm = ResultCache(store=ResultStore(tmp_path))
    replayed = warm.get(spec)
    assert warm.executed == 0 and warm.disk_hits == 1
    assert replayed == result


# -- SweepRunner ------------------------------------------------------------

def test_parallel_sweep_matches_serial_byte_for_byte(tiny_profile):
    functions = [tiny_profile]
    serial_cache = ResultCache()
    SweepRunner(serial_cache, jobs=1).run(
        figure_specs("3a", functions=functions))
    serial = render_figure(figure_3a(serial_cache, functions=functions))

    parallel_cache = ResultCache()
    runner = SweepRunner(parallel_cache, jobs=3)
    runner.run(figure_specs("3a", functions=functions))
    parallel = render_figure(figure_3a(parallel_cache, functions=functions))

    assert parallel == serial
    assert runner.last_stats.executed == 3  # reap/faasnap/snapbpf


def test_warm_sweep_executes_nothing(tmp_path, tiny_profile):
    specs = figure_specs("3a", functions=[tiny_profile])
    cold = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=2)
    cold_results = cold.run(specs)
    assert cold.last_stats.executed == len(specs)

    warm = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=2)
    warm_results = warm.run(specs)
    stats = warm.last_stats
    assert stats.executed == 0, "warm rerun must simulate nothing"
    assert stats.disk_hits == len(specs)
    assert stats.hit_ratio == 1.0
    assert warm_results == cold_results


def test_sweep_deduplicates_requests(tiny_profile):
    spec = ScenarioSpec(function=tiny_profile, approach="linux-nora")
    runner = SweepRunner(ResultCache())
    runner.run([spec, spec, dataclasses.replace(spec, n_instances=2)])
    stats = runner.last_stats
    assert stats.requested == 3 and stats.unique == 2
    assert stats.executed == 2


def test_sweep_counters_in_metrics_registry(tiny_profile):
    cache = ResultCache()
    runner = SweepRunner(cache)
    runner.run([ScenarioSpec(function=tiny_profile, approach="linux-nora")])
    snapshot = cache.metrics.snapshot()
    assert snapshot["sweep_scenarios_executed_total"] == 1
    assert snapshot["sweep_runs_total"] == 1
    assert snapshot["sweep_hit_ratio"] == 0.0


def test_execute_spec_is_deterministic(spec):
    assert execute_spec(spec) == execute_spec(spec)


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)


# -- figure matrix enumeration ---------------------------------------------

def test_matrix_specs_dedupe_across_figures(tiny_profile):
    functions = [tiny_profile]
    specs_3b = figure_specs("3b", functions)
    specs_3c = figure_specs("3c", functions)
    assert specs_3b == specs_3c  # 3b and 3c share every run
    union = matrix_specs(["3b", "3c"], functions)
    assert union == specs_3b


def test_matrix_specs_cover_all_figures(tiny_profile):
    specs = matrix_specs(functions=[tiny_profile])
    approaches = {s.approach for s in specs}
    assert approaches == {"linux-nora", "linux-ra", "reap", "faasnap",
                          "pv-ptes", "snapbpf"}
    assert len(specs) == len(set(specs))


# -- corrupt-entry quarantine ----------------------------------------------

def test_store_quarantines_entry_truncated_mid_file(tmp_path, spec):
    """A write torn mid-JSON (crash during flush) must not poison the
    store: the entry is renamed aside and the cell becomes a miss."""
    store = ResultStore(tmp_path)
    store.save_scenario(spec, run_scenario(spec))
    path = store.path(spec.stable_hash())
    raw = path.read_text()
    path.write_text(raw[:len(raw) // 2])  # torn mid-file

    assert store.load_scenario(spec) is None
    assert store.corrupt_entries == 1
    corrupt = path.with_suffix(path.suffix + ".corrupt")
    assert corrupt.exists() and not path.exists()
    assert len(store) == 0, "quarantined entries leave the store"
    # The quarantined bytes are preserved for post-mortem.
    assert corrupt.read_text() == raw[:len(raw) // 2]
    # Second load is a plain miss: no file left to quarantine again.
    assert store.load_scenario(spec) is None
    assert store.corrupt_entries == 1


def test_corrupt_entries_surface_in_metrics_registry(tmp_path, spec):
    store = ResultStore(tmp_path)
    ResultCache(store=store).get(spec)
    path = store.path(spec.stable_hash())
    path.write_text(path.read_text()[:40])

    cache = ResultCache(store=store)
    assert cache.lookup(spec) is None
    assert cache.metrics.snapshot()["store_corrupt_entries_total"] == 1.0


def test_schema_mismatch_is_a_miss_not_a_quarantine(tmp_path, spec):
    """Old-schema entries are well-formed JSON from a previous version;
    they are overwritten in place, not renamed aside."""
    store = ResultStore(tmp_path)
    store.save_scenario(spec, run_scenario(spec))
    path = store.path(spec.stable_hash())
    entry = json.loads(path.read_text())
    entry["schema"] = -1
    path.write_text(json.dumps(entry))

    assert store.load_scenario(spec) is None
    assert store.corrupt_entries == 0
    assert path.exists()


# -- throughput accounting --------------------------------------------------

def test_stats_rates_split_executed_from_resolved():
    stats = SweepStats(requested=4, unique=4, executed=2,
                       memory_hits=1, disk_hits=1, elapsed_seconds=2.0)
    assert stats.scenarios_per_second == 1.0, "executed cells per second"
    assert stats.resolved_per_second == 2.0, "all unique cells per second"
    summary = stats.summary()
    assert "exec_rate=1.00/s" in summary
    assert "resolved_rate=2.00/s" in summary


def test_warm_rerun_reports_zero_execution_throughput(tmp_path,
                                                      tiny_profile):
    specs = figure_specs("3a", [tiny_profile])
    SweepRunner(ResultCache(store=ResultStore(tmp_path))).run(specs)

    warm = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
    warm.run(specs)
    stats = warm.last_stats
    assert stats.executed == 0
    assert stats.scenarios_per_second == 0.0
    assert stats.resolved_per_second > 0.0
    assert warm.cache.metrics.snapshot()["sweep_scenarios_per_second"] == 0.0
