"""CLI entry point (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bert" in out and "snapbpf" in out
    assert out.count("MiB") >= 13 * 3


def test_run(capsys):
    assert main(["run", "json", "linux-nora"]) == 0
    out = capsys.readouterr().out
    assert "mean E2E" in out and "peak memory" in out


def test_run_unknown_function(capsys):
    assert main(["run", "nosuch", "snapbpf"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_with_instances_and_device(capsys):
    assert main(["run", "json", "linux-nora", "-n", "2",
                 "--device", "hdd"]) == 0
    assert "x2 [hdd]" in capsys.readouterr().out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Kernel-space" in out


def test_fig_with_subset(capsys):
    assert main(["fig", "4", "--functions", "json"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "json" in out


def test_bad_approach_rejected():
    with pytest.raises(SystemExit):
        main(["run", "json", "warpdrive"])


def test_chaos(capsys):
    assert main(["chaos", "json", "linux-nora", "-n", "2",
                 "--fault-seed", "4"]) == 0
    out = capsys.readouterr().out
    assert "Chaos scenario (fault seed 4)" in out
    assert "linux-nora" in out


def test_chaos_attach_failure_override(capsys):
    assert main(["chaos", "json", "snapbpf", "-n", "2",
                 "--media-error-rate", "0",
                 "--attach-failure-rate", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "prefetch_fallbacks=2" in out


def test_chaos_unknown_function(capsys):
    assert main(["chaos", "nosuch"]) == 2
    assert "error" in capsys.readouterr().err


def test_chaos_unknown_approach(capsys):
    assert main(["chaos", "json", "warpdrive"]) == 2
    assert "warpdrive" in capsys.readouterr().err


def test_chaos_out_of_range_rate(capsys):
    assert main(["chaos", "json", "linux-nora",
                 "--media-error-rate", "2.0"]) == 2
    assert "media_error_rate" in capsys.readouterr().err
