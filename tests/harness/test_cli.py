"""CLI entry point (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bert" in out and "snapbpf" in out
    assert out.count("MiB") >= 13 * 3


def test_run(capsys):
    assert main(["run", "json", "linux-nora"]) == 0
    out = capsys.readouterr().out
    assert "mean E2E" in out and "peak memory" in out


def test_run_unknown_function(capsys):
    assert main(["run", "nosuch", "snapbpf"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_with_instances_and_device(capsys):
    assert main(["run", "json", "linux-nora", "-n", "2",
                 "--device", "hdd"]) == 0
    assert "x2 [hdd]" in capsys.readouterr().out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Kernel-space" in out


def test_fig_with_subset(capsys):
    assert main(["fig", "4", "--functions", "json"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "json" in out


def test_bad_approach_rejected():
    with pytest.raises(SystemExit):
        main(["run", "json", "warpdrive"])
