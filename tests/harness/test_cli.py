"""CLI entry point (`python -m repro`)."""

import json

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bert" in out and "snapbpf" in out
    assert out.count("MiB") >= 13 * 3


def test_run(capsys):
    assert main(["run", "json", "linux-nora"]) == 0
    out = capsys.readouterr().out
    assert "mean E2E" in out and "peak memory" in out


def test_run_unknown_function(capsys):
    assert main(["run", "nosuch", "snapbpf"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_with_instances_and_device(capsys):
    assert main(["run", "json", "linux-nora", "-n", "2",
                 "--device", "hdd"]) == 0
    assert "x2 [hdd]" in capsys.readouterr().out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Kernel-space" in out


def test_fig_with_subset(capsys):
    assert main(["fig", "4", "--functions", "json"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "json" in out


def test_fig_requires_figure_or_all(capsys):
    assert main(["fig"]) == 2
    assert "error" in capsys.readouterr().err


def test_fig_reports_sweep_stats(capsys):
    assert main(["fig", "4", "--functions", "json"]) == 0
    captured = capsys.readouterr()
    assert "Figure 4" in captured.out
    assert "sweep: requested=3 unique=3 executed=3" in captured.err


def test_fig_parallel_warm_cache(tmp_path, capsys):
    """The acceptance loop: --jobs N is byte-identical to serial, and a
    warm-cache rerun executes zero simulations."""
    args = ["fig", "4", "--functions", "json",
            "--cache-dir", str(tmp_path), "--jobs", "2"]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "executed=3" in cold.err

    assert main(args) == 0
    warm = capsys.readouterr()
    assert "executed=0" in warm.err
    assert "disk_hits=3" in warm.err
    assert warm.out == cold.out, "warm tables must be byte-identical"

    assert main(["fig", "4", "--functions", "json"]) == 0
    fresh = capsys.readouterr()
    assert fresh.out == cold.out, "parallel must match serial"


def test_fig_no_cache_ignores_store(tmp_path, capsys):
    args = ["fig", "4", "--functions", "json",
            "--cache-dir", str(tmp_path), "--no-cache"]
    assert main(args) == 0
    capsys.readouterr()
    assert list(tmp_path.glob("*.json")) == []


def test_run_with_cache_dir(tmp_path, capsys):
    args = ["run", "json", "linux-nora", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "cache: simulated, stored" in first.err

    assert main(args) == 0
    second = capsys.readouterr()
    assert "cache: hit" in second.err
    assert second.out == first.out


def test_bad_approach_rejected():
    with pytest.raises(SystemExit):
        main(["run", "json", "warpdrive"])


def test_chaos(capsys):
    assert main(["chaos", "json", "linux-nora", "-n", "2",
                 "--fault-seed", "4"]) == 0
    out = capsys.readouterr().out
    assert "Chaos scenario (fault seed 4)" in out
    assert "linux-nora" in out


def test_chaos_attach_failure_override(capsys):
    assert main(["chaos", "json", "snapbpf", "-n", "2",
                 "--media-error-rate", "0",
                 "--attach-failure-rate", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "prefetch_fallbacks=2" in out


def test_chaos_parallel_matches_serial(capsys):
    args = ["chaos", "json", "linux-nora", "snapbpf", "-n", "2",
            "--fault-seed", "4"]
    assert main(args) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_chaos_warm_cache(tmp_path, capsys):
    args = ["chaos", "json", "linux-nora", "-n", "2",
            "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert len(list(tmp_path.glob("*.json"))) == 1
    assert main(args) == 0
    assert capsys.readouterr().out == cold


def test_chaos_unknown_function(capsys):
    assert main(["chaos", "nosuch"]) == 2
    assert "error" in capsys.readouterr().err


def test_chaos_unknown_approach(capsys):
    assert main(["chaos", "json", "warpdrive"]) == 2
    assert "warpdrive" in capsys.readouterr().err


def test_chaos_out_of_range_rate(capsys):
    assert main(["chaos", "json", "linux-nora",
                 "--media-error-rate", "2.0"]) == 2
    assert "media_error_rate" in capsys.readouterr().err


def test_cluster_single_run(capsys):
    assert main(["cluster", "json", "snapbpf", "--duration", "1",
                 "--cluster-functions", "2"]) == 0
    out = capsys.readouterr().out
    assert "json/snapbpf cluster" in out
    assert "cold starts" in out and "served/node" in out


def test_cluster_default_approach_is_snapbpf(capsys):
    assert main(["cluster", "json", "--duration", "1",
                 "--cluster-functions", "2", "--policy", "random"]) == 0
    assert "json/snapbpf cluster: random x2" in capsys.readouterr().out


def test_cluster_unknown_function(capsys):
    assert main(["cluster", "nosuch"]) == 2
    assert "error" in capsys.readouterr().err


def test_cluster_bad_policy(capsys):
    assert main(["cluster", "json", "--policy", "sticky",
                 "--duration", "1"]) == 2
    assert "policy" in capsys.readouterr().err


def test_cluster_fig_bad_policy_list(capsys):
    assert main(["cluster", "json", "--fig", "--policies",
                 "random,bogus"]) == 2
    assert "unknown routing policy" in capsys.readouterr().err


def test_cluster_fig_smoke(capsys):
    assert main(["cluster", "json", "snapbpf", "--fig",
                 "--policies", "random,snapshot-locality",
                 "--node-counts", "2", "--duration", "1",
                 "--cluster-functions", "2"]) == 0
    captured = capsys.readouterr()
    assert "cold-start ratio" in captured.out
    assert "snapshot-locality" in captured.out
    assert "sweep:" in captured.err


def test_fig_chaos_sweep_byte_identical(tmp_path, capsys):
    """The headline acceptance loop: every worker SIGKILLed on first
    attempt, every store write torn — yet the figure is byte-identical
    to a clean serial run and the failure manifest is empty."""
    assert main(["fig", "4", "--functions", "json"]) == 0
    reference = capsys.readouterr().out

    manifest = tmp_path / "artifacts" / "sweep_failures.json"
    assert main(["fig", "4", "--functions", "json", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "store"),
                 "--sweep-kill-rate", "1.0", "--sweep-tear-rate", "1.0",
                 "--sweep-fault-seed", "7", "--max-retries", "3",
                 "--failure-manifest", str(manifest)]) == 0
    chaotic = capsys.readouterr()
    assert chaotic.out == reference
    assert "worker_crashes=" in chaotic.err
    assert "worker_crashes=0" not in chaotic.err
    payload = json.loads(manifest.read_text())
    assert payload["kind"] == "sweep-failures"
    assert payload["failures"] == []


def test_run_accepts_supervision_flags(capsys):
    assert main(["run", "json", "linux-nora", "--timeout", "120",
                 "--max-retries", "1", "--keep-going"]) == 0
    assert "json" in capsys.readouterr().out


def test_fig_bad_sweep_rate_rejected(capsys):
    assert main(["fig", "4", "--functions", "json",
                 "--sweep-kill-rate", "1.5"]) == 2
    assert "rate" in capsys.readouterr().err.lower()
