"""ScenarioSpec: coercion, hashing, serialization, and the shim."""

import dataclasses

import pytest

from repro.harness.experiment import run_scenario
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec, stable_hash
from repro.mm.costs import CostModel
from repro.workloads.profile import profile_by_name


def test_function_name_coerced_to_profile():
    spec = ScenarioSpec(function="json", approach="snapbpf")
    assert spec.function is profile_by_name("json")
    assert spec.function_name == "json"


def test_specs_are_hashable_dict_keys(tiny_profile):
    a = ScenarioSpec(function=tiny_profile, approach="snapbpf")
    b = ScenarioSpec(function=tiny_profile, approach="snapbpf")
    assert a == b and hash(a) == hash(b)
    assert len({a: 1, b: 2}) == 1


def test_stable_hash_is_content_addressed(tiny_profile):
    base = ScenarioSpec(function=tiny_profile, approach="snapbpf")
    assert base.stable_hash() == ScenarioSpec(
        function=tiny_profile, approach="snapbpf").stable_hash()
    assert len(base.stable_hash()) == 64
    variants = [
        dataclasses.replace(base, approach="reap"),
        dataclasses.replace(base, n_instances=2),
        dataclasses.replace(base, input_seed=1),
        dataclasses.replace(base, vary_inputs=True),
        dataclasses.replace(base, device_kind="hdd"),
        dataclasses.replace(base, costs=CostModel().scaled(2.0)),
        dataclasses.replace(base, function=profile_by_name("json")),
    ]
    hashes = {base.stable_hash()} | {v.stable_hash() for v in variants}
    assert len(hashes) == len(variants) + 1, "every field must key the hash"


def test_hash_covers_schema_version(tiny_profile):
    spec = ScenarioSpec(function=tiny_profile, approach="snapbpf")
    assert spec.stable_hash() == stable_hash(
        {"schema": SCHEMA_VERSION, "spec": spec.canonical()})
    assert spec.stable_hash() != stable_hash(
        {"schema": SCHEMA_VERSION + 1, "spec": spec.canonical()})


def test_canonical_round_trip(tiny_profile):
    spec = ScenarioSpec(function=tiny_profile, approach="reap",
                        n_instances=3, input_seed=7, vary_inputs=True,
                        device_kind="hdd", costs=CostModel().scaled(4.0))
    assert ScenarioSpec.from_dict(spec.canonical()) == spec


def test_invalid_specs_rejected(tiny_profile):
    with pytest.raises(ValueError):
        ScenarioSpec(function=tiny_profile, approach="snapbpf",
                     device_kind="floppy")
    with pytest.raises(ValueError):
        ScenarioSpec(function=tiny_profile, approach="snapbpf",
                     n_instances=0)
    with pytest.raises(TypeError):
        ScenarioSpec(function=tiny_profile, approach=lambda k: None)
    with pytest.raises(TypeError):
        ScenarioSpec(function=tiny_profile, approach="snapbpf",
                     costs="cheap")


def test_run_scenario_requires_a_spec(tiny_profile):
    """The legacy run_scenario(profile, approach, ...) form is gone:
    anything but a ScenarioSpec is a TypeError up front."""
    with pytest.raises(TypeError, match="ScenarioSpec"):
        run_scenario(tiny_profile)
    with pytest.raises(TypeError):
        run_scenario(tiny_profile, "snapbpf")  # old positional approach
    with pytest.raises(TypeError, match="ScenarioSpec"):
        run_scenario({"function": "json", "approach": "snapbpf"})


def test_run_scenario_approach_factory_overrides_registry(tiny_profile):
    from repro.baselines.reap import REAP
    spec = ScenarioSpec(function=tiny_profile, approach="reap")
    via_name = run_scenario(spec)
    via_factory = run_scenario(spec, approach_factory=REAP)
    assert via_factory.approach == "reap"
    assert via_factory == via_name
