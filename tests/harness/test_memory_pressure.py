"""Memory-pressure scenarios: identity when unpressured, the paper's
elasticity claim under a shrinking pool, and determinism across job
counts and warm stores."""

from repro.harness.chaos import run_chaos_scenario
from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.figures import MEM_HEADROOMS, pressure_ram_bytes
from repro.harness.spec import ScenarioSpec
from repro.harness.sweep import ResultStore, SweepRunner
from repro.units import GIB


def test_watermarks_on_unpressured_pool_are_identity(tiny_profile):
    """The acceptance identity: enabling the pressure plane on the
    default (never-pressured) pool changes nothing in the results."""
    spec = ScenarioSpec(function=tiny_profile, approach="snapbpf",
                        n_instances=2)
    baseline = run_scenario(spec)
    kernel = make_kernel("ssd")
    kernel.reclaim.enable_watermarks()
    with_plane = run_scenario(spec, kernel=kernel)
    assert with_plane.to_json() == baseline.to_json()


def test_chaos_fingerprint_identical_with_watermarks(tiny_profile):
    baseline = run_chaos_scenario(tiny_profile, "snapbpf", fault_seed=5,
                                  n_requests=3)
    with_plane = run_chaos_scenario(tiny_profile, "snapbpf", fault_seed=5,
                                    n_requests=3, ram_bytes=256 * GIB)
    assert with_plane.fingerprint() == baseline.fingerprint()


def test_pressure_deflates_file_footprint_but_not_anon(tiny_profile):
    """The elasticity claim behind the mem figure: under a shrinking
    pool, the page-cache approach sheds file pages while REAP's per-VM
    anonymous frames stay pinned."""
    n = 4
    results = {}
    for approach in ("snapbpf", "reap"):
        for g in MEM_HEADROOMS:
            spec = ScenarioSpec(
                function=tiny_profile, approach=approach, n_instances=n,
                ram_bytes=pressure_ram_bytes(tiny_profile, approach, n, g))
            results[approach, g] = run_scenario(spec)

    full, squeezed = (results["reap", g] for g in MEM_HEADROOMS)
    assert squeezed.end_anon_bytes == full.end_anon_bytes > 0

    full, squeezed = (results["snapbpf", g] for g in MEM_HEADROOMS)
    assert 0 < squeezed.end_file_bytes < full.end_file_bytes
    assert squeezed.extra["reclaim_evictions"] > 0
    assert "reclaim_evict_digest" in squeezed.extra


def test_policy_cell_identical_across_jobs_and_warm_store(tiny_profile,
                                                          tmp_path):
    """Acceptance criterion: a policy-attached pressure cell is
    byte-identical across --jobs counts and warm ResultStore replays."""
    spec = ScenarioSpec(
        function=tiny_profile, approach="snapbpf", n_instances=2,
        ram_bytes=pressure_ram_bytes(tiny_profile, "snapbpf", 2, 0.0),
        evict_policy="evict-high-first")
    serial = run_scenario(spec)
    assert serial.extra["reclaim_evictions"] > 0

    cache = ResultCache(store=ResultStore(tmp_path))
    SweepRunner(cache, jobs=2).run([spec])
    assert cache.get(spec).to_json() == serial.to_json()

    warm = ResultCache(store=ResultStore(tmp_path))
    assert warm.get(spec).to_json() == serial.to_json()
    assert warm.executed == 0


def test_policy_changes_the_cell_identity_and_digest(tiny_profile):
    base = ScenarioSpec(
        function=tiny_profile, approach="snapbpf", n_instances=2,
        ram_bytes=pressure_ram_bytes(tiny_profile, "snapbpf", 2, 0.0))
    with_policy = ScenarioSpec(
        function=tiny_profile, approach="snapbpf", n_instances=2,
        ram_bytes=base.ram_bytes, evict_policy="evict-high-first")
    assert base.stable_hash() != with_policy.stable_hash()
    lru = run_scenario(base)
    policy = run_scenario(with_policy)
    assert (lru.extra["reclaim_evict_digest"]
            != policy.extra["reclaim_evict_digest"])
