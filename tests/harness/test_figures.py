"""Figure builders on small profiles (full-size runs live in benchmarks/)."""

import pytest

from repro.harness.experiment import ResultCache
from repro.harness.figures import (
    figure_3a,
    figure_3b,
    figure_3c,
    figure_4,
    overheads,
    table_1,
)
from repro.harness.report import render_figure, render_table, render_table1


@pytest.fixture(scope="module")
def cache():
    return ResultCache()


@pytest.fixture(scope="module")
def small(tiny_profile_module):
    return [tiny_profile_module]


@pytest.fixture(scope="module")
def tiny_profile_module():
    from repro.units import MIB
    from repro.workloads.profile import FunctionProfile
    return FunctionProfile(
        name="tiny", mem_bytes=64 * MIB, ws_bytes=6 * MIB,
        alloc_bytes=3 * MIB, compute_seconds=0.02, write_frac=0.15,
        run_len_mean=8.0, seed=42)


def test_figure_3a_series(cache, small):
    data = figure_3a(cache, functions=small)
    assert set(data.series) == {"reap", "faasnap", "snapbpf"}
    assert data.functions == ["tiny"]
    assert all(v > 0 for series in data.series.values() for v in series)


def test_figure_3b_normalized(cache, small):
    data = figure_3b(cache, functions=small)
    assert set(data.series) == {"linux-nora", "linux-ra", "reap", "snapbpf"}
    assert data.series["linux-nora"] == [1.0]
    assert data.value("tiny", "snapbpf") < 1.0


def test_figure_3c_memory(cache, small):
    data = figure_3c(cache, functions=small)
    assert data.value("tiny", "reap") > data.value("tiny", "snapbpf")


def test_figure_3b_and_3c_share_runs(cache, small):
    figure_3b(cache, functions=small)
    mid = len(cache)
    figure_3c(cache, functions=small)
    assert len(cache) == mid  # 3c added no new scenario runs


def test_figure_4_breakdown(cache, small):
    data = figure_4(cache, functions=small)
    assert data.series["linux-ra"] == [1.0]
    assert data.value("tiny", "snapbpf") <= data.value("tiny", "pv-ptes")


def test_overheads(cache, small):
    data = overheads(cache, functions=small)
    assert 0 < data.value("tiny", "fraction_of_e2e") < 0.05


def test_table_1_matches_paper():
    rows = {row["approach"]: row for row in table_1()}
    assert rows["reap"]["in_memory_ws_dedup"] == "No"
    assert rows["faasnap"]["in_memory_ws_dedup"] == "Yes"
    assert rows["snapbpf"]["on_disk_ws_serialization"] == "No"
    assert rows["snapbpf"]["space"] == "Kernel-space"
    assert all(rows[a]["on_disk_ws_serialization"] == "Yes"
               for a in ("reap", "faast", "faasnap"))


def test_renderers_produce_text(cache, small):
    data = figure_3a(cache, functions=small)
    text = render_figure(data)
    assert "Figure 3a" in text and "tiny" in text
    table1 = render_table1(table_1())
    assert "snapbpf" in table1 and "Kernel-space" in table1
    assert render_table([["h1", "h2"], ["a", "b"]]).count("\n") == 2


def test_value_accessor(cache, small):
    data = figure_3a(cache, functions=small)
    assert data.value("tiny", "reap") == data.series["reap"][0]
    rows = data.as_rows()
    assert rows[0][0] == "function"
