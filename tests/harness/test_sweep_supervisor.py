"""Supervised sweep execution: crash recovery, deadlines, poison
quarantine, incremental checkpointing, and interrupt-and-resume."""

import json
import os
import signal

import pytest

from repro.faults import SweepFaultInjector
from repro.harness.experiment import ResultCache
from repro.harness.figures import figure_3a, figure_specs
from repro.harness.report import render_figure
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec
from repro.harness.sweep import (
    FailureRecord,
    ResultStore,
    SweepCell,
    SweepFailure,
    SweepInterrupted,
    SweepRunner,
    supervised_map,
    write_failure_manifest,
)


def _render_3a(cache, tiny_profile) -> str:
    return render_figure(figure_3a(cache, functions=[tiny_profile]))


@pytest.fixture
def specs_3a(tiny_profile):
    return figure_specs("3a", functions=[tiny_profile])


# -- crash recovery ---------------------------------------------------------

def test_worker_kills_recover_byte_identical(tiny_profile, specs_3a):
    """Every first attempt SIGKILLs its worker; retries land the exact
    bytes of an unfaulted serial run."""
    baseline_cache = ResultCache()
    SweepRunner(baseline_cache).run(specs_3a)
    baseline = _render_3a(baseline_cache, tiny_profile)

    injector = SweepFaultInjector(seed=7, kill_rate=1.0)
    runner = SweepRunner(ResultCache(), jobs=2, max_retries=3,
                         injector=injector)
    runner.run(specs_3a)

    assert _render_3a(runner.cache, tiny_profile) == baseline
    stats = runner.last_stats
    assert stats.executed == len(specs_3a)
    assert stats.worker_crashes >= len(specs_3a)
    assert stats.retries >= len(specs_3a)
    assert stats.quarantined == 0
    snapshot = runner.cache.metrics.snapshot()
    assert snapshot["sweep_worker_crashes_total"] >= len(specs_3a)
    assert snapshot["sweep_retries_total"] >= len(specs_3a)


def test_serial_mode_survives_kill_and_hang(tiny_profile, specs_3a):
    """jobs=1 has no worker process to kill; planned faults surface as
    in-process surrogates and take the same retry path."""
    injector = SweepFaultInjector(hang_seconds=30.0)
    injector.kill_next()
    injector.hang_next()
    runner = SweepRunner(ResultCache(), jobs=1, timeout=0.5,
                         injector=injector)
    results = runner.run(specs_3a)

    assert len(results) == len(specs_3a)
    stats = runner.last_stats
    assert stats.worker_crashes == 1
    assert stats.timeouts == 1
    assert stats.retries == 2
    assert stats.executed == len(specs_3a)


def test_deadline_expiry_retries_in_pool(tiny_profile, specs_3a):
    """A hung worker is torn down at the deadline and the cell retried
    clean; innocent cells caught in the teardown are not charged."""
    injector = SweepFaultInjector(hang_seconds=30.0)
    injector.hang_next()
    runner = SweepRunner(ResultCache(), jobs=2, timeout=1.0,
                         max_retries=2, injector=injector)
    results = runner.run(specs_3a)

    assert len(results) == len(specs_3a)
    stats = runner.last_stats
    assert stats.timeouts >= 1
    assert stats.quarantined == 0
    assert runner.cache.metrics.snapshot()["sweep_timeouts_total"] >= 1


# -- poison quarantine ------------------------------------------------------

def test_poison_cell_quarantined_with_keep_going(tiny_profile):
    spec = ScenarioSpec(function=tiny_profile, approach="linux-nora")
    injector = SweepFaultInjector()
    injector.kill_next(10)  # every attempt dies: a poison cell
    runner = SweepRunner(ResultCache(), jobs=1, max_retries=1,
                         keep_going=True, injector=injector)
    results = runner.run([spec])

    assert spec not in results
    stats = runner.last_stats
    assert stats.quarantined == 1
    assert stats.executed == 0
    assert len(runner.last_manifest) == 1
    record = runner.last_manifest[0]
    assert record.reason == "crash"
    assert record.attempts == 2, "max_retries=1 means two attempts total"
    assert record.key == spec.stable_hash()
    assert record.spec == spec.canonical()
    assert runner.cache.metrics.snapshot()["sweep_quarantined_total"] == 1


def test_poison_cell_raises_without_keep_going(tiny_profile):
    spec = ScenarioSpec(function=tiny_profile, approach="linux-nora")
    injector = SweepFaultInjector()
    injector.kill_next(10)
    runner = SweepRunner(ResultCache(), jobs=1, max_retries=1,
                         injector=injector)
    with pytest.raises(SweepFailure) as excinfo:
        runner.run([spec])
    assert len(excinfo.value.failures) == 1
    assert runner.last_manifest == excinfo.value.failures


def test_cell_exceptions_are_poison_not_transient():
    """Cells are pure functions of their spec — a Python exception is
    deterministic, so it quarantines immediately with no retry."""
    def boom(payload):
        raise ValueError("deterministic failure")

    events = []
    cells = [SweepCell(index=0, item=None, key="poison", label="boom")]
    results, failures = supervised_map(
        boom, cells, jobs=1, max_retries=3, keep_going=True,
        notify=lambda kind, cell, error: events.append(kind))

    assert results == {}
    assert len(failures) == 1
    assert failures[0].reason == "error"
    assert failures[0].attempts == 1
    assert "deterministic failure" in failures[0].error
    assert "retry" not in events
    assert events.count("quarantine") == 1


# -- failure manifest -------------------------------------------------------

def test_failure_manifest_round_trips(tmp_path):
    record = FailureRecord(key="abc123", label="json/snapbpf", attempts=3,
                           reason="timeout", error="deadline 5.0s",
                           spec={"approach": "snapbpf"})
    path = tmp_path / "artifacts" / "failures.json"
    write_failure_manifest(path, [record])
    payload = json.loads(path.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["kind"] == "sweep-failures"
    assert payload["failures"] == [record.to_dict()]

    write_failure_manifest(path, [])
    assert json.loads(path.read_text())["failures"] == []


# -- interrupt-and-resume ---------------------------------------------------

def test_interrupt_then_resume_executes_only_remaining(
        tmp_path, tiny_profile, specs_3a):
    """Cancel after 1 cell; the rerun executes exactly unique-1 cells
    and renders byte-identical to an uninterrupted run."""
    baseline_cache = ResultCache()
    SweepRunner(baseline_cache).run(specs_3a)
    baseline = _render_3a(baseline_cache, tiny_profile)

    runner = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=1)
    with pytest.raises(SweepInterrupted) as excinfo:
        runner.run(specs_3a,
                   on_result=lambda spec, result: runner.request_stop())
    assert excinfo.value.completed == 1
    assert runner.last_stats.executed == 1
    assert len(ResultStore(tmp_path)) == 1, "checkpointed before the stop"

    resumed = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=1)
    results = resumed.run(specs_3a)
    assert len(results) == len(specs_3a)
    assert resumed.last_stats.executed == len(specs_3a) - 1
    assert resumed.last_stats.disk_hits == 1
    assert _render_3a(resumed.cache, tiny_profile) == baseline


def test_parallel_interrupt_flushes_inflight(tmp_path, tiny_profile,
                                             specs_3a):
    runner = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=2)
    with pytest.raises(SweepInterrupted):
        runner.run(specs_3a, on_result=lambda spec, result:
                   runner.request_stop(signal.SIGTERM))
    stored = len(ResultStore(tmp_path))
    assert 1 <= stored <= len(specs_3a)
    assert runner.last_stats.executed == stored

    resumed = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=2)
    resumed.run(specs_3a)
    assert resumed.last_stats.executed == len(specs_3a) - stored


def test_real_sigint_flushes_and_restores_handler(tmp_path, tiny_profile,
                                                  specs_3a):
    """An actual SIGINT mid-sweep checkpoints completed cells, surfaces
    as SweepInterrupted, and leaves the previous handler installed."""
    previous = signal.getsignal(signal.SIGINT)
    runner = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=1)
    with pytest.raises(SweepInterrupted) as excinfo:
        runner.run(specs_3a, on_result=lambda spec, result:
                   os.kill(os.getpid(), signal.SIGINT))
    assert excinfo.value.signum == signal.SIGINT
    assert signal.getsignal(signal.SIGINT) is previous
    assert len(ResultStore(tmp_path)) >= 1


# -- torn store writes ------------------------------------------------------

def test_torn_store_writes_quarantined_then_reexecuted(
        tmp_path, tiny_profile, specs_3a):
    """Tear every first store write mid-JSON; the warm rerun quarantines
    the corrupt entries, re-executes, and converges byte-identical."""
    baseline_cache = ResultCache()
    SweepRunner(baseline_cache).run(specs_3a)
    baseline = _render_3a(baseline_cache, tiny_profile)

    injector = SweepFaultInjector(seed=3, tear_rate=1.0)
    torn = SweepRunner(ResultCache(store=ResultStore(tmp_path)), jobs=1,
                       injector=injector)
    torn.run(specs_3a)
    assert injector.store_tears == len(specs_3a)

    store = ResultStore(tmp_path)
    rerun = SweepRunner(ResultCache(store=store), jobs=1)
    rerun.run(specs_3a)
    assert store.corrupt_entries == len(specs_3a)
    assert rerun.last_stats.executed == len(specs_3a)
    snapshot = rerun.cache.metrics.snapshot()
    assert snapshot["store_corrupt_entries_total"] == float(len(specs_3a))
    corrupt_files = list(tmp_path.glob("*.json.corrupt"))
    assert len(corrupt_files) == len(specs_3a)
    assert _render_3a(rerun.cache, tiny_profile) == baseline
