"""The perf-trajectory harness's pure parts, and SweepOptions.

The timing paths (run_cell, ebpf_microbench) are exercised by the CI
bench smoke job; here we pin the cheap logic: flag resolution, the
regression comparator, and the report renderer.
"""

import argparse
import pathlib

import pytest

from repro.harness import bench as B
from repro.harness.sweep import SweepOptions, SweepRunner


def _report(compiled=150_000.0, cells=None):
    return {
        "schema": B.BENCH_SCHEMA,
        "issue": B.BENCH_ISSUE,
        "quick": False,
        "ebpf_microbench": {"rounds": 100,
                            "compiled_runs_per_sec": compiled,
                            "interp_runs_per_sec": compiled / 2,
                            "speedup": 2.0},
        "ebpf_tier_gate": {"required_speedup": 2.0,
                           "measured_speedup": 2.0, "pass": True},
        "cells": cells if cells is not None else [
            {"cell": "json/snapbpfx4", "events": 82_296,
             "cold_seconds": 1.5, "warm_seconds": 1e-5,
             "events_per_sec": 54_864.0}],
        "total_wall_seconds": 2.0,
    }


class TestCompare:
    def test_clean_pass(self):
        assert B.compare(_report(), _report()) == []

    def test_events_per_sec_regression(self):
        fresh = _report(cells=[
            {"cell": "json/snapbpfx4", "events": 82_296,
             "cold_seconds": 3.0, "warm_seconds": 1e-5,
             "events_per_sec": 27_432.0}])
        regressions = B.compare(fresh, _report())
        assert len(regressions) == 1
        assert "json/snapbpfx4" in regressions[0]

    def test_microbench_regression(self):
        regressions = B.compare(_report(compiled=90_000.0), _report())
        assert len(regressions) == 1
        assert "compiled tier" in regressions[0]

    def test_within_threshold_passes(self):
        # 20% slower is inside the 30% gate.
        fresh = _report(cells=[
            {"cell": "json/snapbpfx4", "events": 82_296,
             "cold_seconds": 1.875, "warm_seconds": 1e-5,
             "events_per_sec": 43_891.0}])
        assert B.compare(fresh, _report()) == []

    def test_changed_event_count_is_flagged(self):
        # A different event count means determinism broke (or the
        # workload changed) — never silently compare rates across it.
        fresh = _report(cells=[
            {"cell": "json/snapbpfx4", "events": 99,
             "cold_seconds": 0.001, "warm_seconds": 1e-5,
             "events_per_sec": 99_000.0}])
        regressions = B.compare(fresh, _report())
        assert len(regressions) == 1
        assert "event count changed" in regressions[0]

    def test_quick_subset_only_compares_shared_cells(self):
        baseline = _report()
        baseline["cells"].append(
            {"cell": "bert/snapbpfx10", "events": 1_110_700,
             "cold_seconds": 28.0, "warm_seconds": 1e-5,
             "events_per_sec": 39_668.0})
        assert B.compare(_report(), baseline) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            B.compare(_report(), _report(), threshold=0.0)


def test_render_bench_mentions_gate_and_cells():
    text = B.render_bench(_report())
    assert "gate >= 2x: pass" in text
    assert "json/snapbpfx4" in text


def test_committed_trajectory_is_loadable_and_gated():
    """The committed BENCH_*.json must stay schema-valid with a
    passing tier gate — it is the baseline CI compares against."""
    root = pathlib.Path(__file__).resolve().parents[2]
    report = B.load_bench(str(root / B.DEFAULT_BENCH_PATH))
    assert report["schema"] == B.BENCH_SCHEMA
    assert report["ebpf_tier_gate"]["pass"] is True
    assert report["ebpf_tier_gate"]["measured_speedup"] >= 2.0
    keys = {cell["cell"] for cell in report["cells"]}
    assert {c.key for c in B.BENCH_CELLS} <= keys


class TestSweepOptions:
    def test_defaults_match_parser_defaults(self):
        opts = SweepOptions()
        assert opts.jobs == 1
        assert opts.max_retries == 2
        assert opts.timeout is None
        assert opts.serve_port == 8040

    def test_from_args_partial_namespace(self):
        # A namespace from a command that only opted into part of the
        # flag surface still resolves; missing knobs keep defaults.
        args = argparse.Namespace(jobs=4, timeout=12.5)
        opts = SweepOptions.from_args(args)
        assert opts.jobs == 4
        assert opts.timeout == 12.5
        assert opts.max_retries == 2
        assert opts.cache_dir is None

    def test_make_store_honors_no_cache(self, tmp_path):
        assert SweepOptions().make_store() is None
        cached = SweepOptions(cache_dir=str(tmp_path))
        assert cached.make_store() is not None
        assert SweepOptions(cache_dir=str(tmp_path),
                            no_cache=True).make_store() is None

    def test_make_injector_off_by_default(self):
        assert SweepOptions().make_injector() is None

    def test_make_injector_outlives_deadline(self):
        injector = SweepOptions(sweep_hang_rate=1.0,
                                timeout=60.0).make_injector()
        assert injector is not None
        assert injector.hang_seconds == 120.0

    def test_make_injector_validates_rates(self):
        with pytest.raises(ValueError):
            SweepOptions(sweep_kill_rate=1.5).make_injector()

    def test_make_runner_wiring(self):
        opts = SweepOptions(jobs=3, timeout=9.0, max_retries=5,
                            keep_going=True, sweep_kill_rate=0.5)
        runner = opts.make_runner(cache=None)
        assert isinstance(runner, SweepRunner)
        assert runner.jobs == 3
        assert runner.timeout == 9.0
        assert runner.max_retries == 5
        assert runner.keep_going is True
        assert runner.injector is not None
