"""The varying-inputs experiment path (paper §4 future work)."""

from repro.harness.experiment import run_scenario
from repro.harness.spec import ScenarioSpec


def test_varying_inputs_changes_memory(tiny_profile):
    identical = run_scenario(ScenarioSpec(tiny_profile, "snapbpf",
                                          n_instances=6))
    varying = run_scenario(ScenarioSpec(tiny_profile, "snapbpf",
                                        n_instances=6, vary_inputs=True))
    # Distinct inputs touch extra (input-dependent) pages: more memory,
    # more I/O, but nothing close to a per-instance copy.
    assert varying.peak_memory_bytes > identical.peak_memory_bytes
    assert varying.device_bytes_read > identical.device_bytes_read
    assert varying.peak_memory_bytes < 3 * identical.peak_memory_bytes


def test_record_instance_uses_base_seed(tiny_profile):
    """Instance 0 always replays the recorded input, so its trace is
    fully covered by the captured working set even when varying."""
    varying = run_scenario(ScenarioSpec(tiny_profile, "snapbpf",
                                        n_instances=3, vary_inputs=True))
    by_id = {inv.vm_id: inv for inv in varying.invocations}
    identical = run_scenario(ScenarioSpec(tiny_profile, "snapbpf",
                                          n_instances=1))
    assert by_id["vm0"].pages_touched == (
        identical.invocations[0].pages_touched)


def test_vary_inputs_works_for_uffd_approaches(tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, "reap",
                                       n_instances=4, vary_inputs=True))
    assert len(result.invocations) == 4
    # Off-working-set pages were served on demand via uffd.
    assert any(inv.uffd_faults > 0 for inv in result.invocations)
