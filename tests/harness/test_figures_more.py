"""Figure-builder details not covered by the main figure tests."""

import pytest

from repro.harness.experiment import ResultCache
from repro.harness.figures import FigureData, _profiles, figure_3b
from repro.units import MIB
from repro.workloads.profile import FUNCTIONS, FunctionProfile


@pytest.fixture(scope="module")
def tiny():
    return FunctionProfile(name="tiny2", mem_bytes=48 * MIB,
                           ws_bytes=4 * MIB, alloc_bytes=2 * MIB,
                           compute_seconds=0.02, seed=71)


def test_profiles_resolution_by_name_and_object(tiny):
    assert _profiles(None) == list(FUNCTIONS)
    assert _profiles(["bert"])[0].name == "bert"
    assert _profiles([tiny])[0] is tiny


def test_figure_3b_unnormalized(tiny):
    cache = ResultCache()
    raw = figure_3b(cache, functions=[tiny], normalize=False)
    norm = figure_3b(cache, functions=[tiny], normalize=True)
    nora = raw.value("tiny2", "linux-nora")
    assert nora > 0.02  # absolute seconds, not a ratio
    assert norm.value("tiny2", "snapbpf") == pytest.approx(
        raw.value("tiny2", "snapbpf") / nora)
    assert "(s)" in raw.ylabel and "normalized" in norm.ylabel


def test_figure_data_unknown_lookup_raises():
    data = FigureData(figure="x", ylabel="y", functions=["f"],
                      series={"s": [1.0]})
    with pytest.raises(ValueError):
        data.value("ghost", "s")
    with pytest.raises(KeyError):
        data.value("f", "ghost")
