"""Chaos harness: seeded reproducibility and graceful completion."""

import pytest

from repro.faults import FaultConfig, SweepFaultInjector, WorkerFault
from repro.harness.chaos import (
    DEFAULT_CHAOS,
    ChaosResult,
    chaos_key,
    chaos_rows,
    fixed_interval_arrivals,
    render_chaos,
    run_chaos_scenario,
    run_chaos_suite,
)
from repro.harness.sweep import ResultStore
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


@pytest.fixture
def profile():
    return FunctionProfile(name="alpha", mem_bytes=48 * MIB,
                           ws_bytes=4 * MIB, alloc_bytes=2 * MIB,
                           compute_seconds=0.02, run_len_mean=8.0, seed=31)


#: Rates cranked high enough that a 3-request run reliably sees faults.
HOT = FaultConfig(media_error_rate=0.05, latency_spike_rate=0.1,
                  torn_page_rate=0.01)


def test_fixed_interval_arrivals(profile):
    arrivals = fixed_interval_arrivals(profile, 3, 0.5, input_seed=7)
    assert [a.time for a in arrivals] == [0.0, 0.5, 1.0]
    assert all(a.function == "alpha" and a.input_seed == 7
               for a in arrivals)


def test_same_fault_seed_is_byte_identical(profile):
    """Satellite of the fault plane: a chaos run is a pure function of
    its seeds."""
    first = run_chaos_scenario(profile, "snapbpf", config=HOT,
                               fault_seed=5, n_requests=3)
    again = run_chaos_scenario(profile, "snapbpf", config=HOT,
                               fault_seed=5, n_requests=3)
    other = run_chaos_scenario(profile, "snapbpf", config=HOT,
                               fault_seed=6, n_requests=3)
    assert first.fingerprint() == again.fingerprint()
    assert first.fingerprint() != other.fingerprint()


def test_transient_chaos_completes_every_request(profile):
    result = run_chaos_scenario(profile, "linux-ra", config=HOT,
                                fault_seed=2, n_requests=3)
    assert result.report.completed == 3
    assert result.report.failures == 0
    injected = sum(v for k, v in result.fault_stats.items()
                   if k != "latency_spikes")
    assert injected > 0  # the run actually exercised the fault plane
    assert result.cache_io_retries > 0


def test_attach_failure_chaos_degrades_snapbpf(profile):
    """The headline acceptance scenario: with every prefetch attach
    failing, SnapBPF serves everything through demand paging."""
    config = FaultConfig(attach_failure_rate=1.0)
    result = run_chaos_scenario(profile, "snapbpf", config=config,
                                fault_seed=0, n_requests=2)
    assert result.report.completed == 2
    assert result.approach_counters["prefetch_fallbacks"] == 2
    assert result.fault_stats["attach_failures"] == 2


def test_record_phase_runs_clean(profile):
    """Faults are installed after prepare: a zero-rate config must
    leave the whole run untouched."""
    result = run_chaos_scenario(profile, "snapbpf", config=FaultConfig(),
                                fault_seed=0, n_requests=2)
    assert result.report.completed == 2
    assert all(v == 0 for v in result.fault_stats.values())
    assert result.approach_counters == {}


def test_parallel_suite_matches_serial_fingerprints(profile):
    """Each chaos cell is independent, so any job count reproduces the
    serial fingerprints exactly."""
    approaches = ["snapbpf", "linux-ra", "reap"]
    serial = run_chaos_suite(profile, approaches, config=HOT,
                             fault_seed=5, n_requests=3, jobs=1)
    parallel = run_chaos_suite(profile, approaches, config=HOT,
                               fault_seed=5, n_requests=3, jobs=2)
    assert [r.approach for r in parallel] == [r.approach for r in serial]
    assert ([r.fingerprint() for r in parallel]
            == [r.fingerprint() for r in serial])


def test_chaos_result_round_trip(profile):
    result = run_chaos_scenario(profile, "snapbpf", config=HOT,
                                fault_seed=5, n_requests=3)
    replayed = ChaosResult.from_dict(result.to_dict())
    assert replayed.fingerprint() == result.fingerprint()
    assert replayed.report.memory_timeline == result.report.memory_timeline


def test_chaos_suite_replays_from_store(tmp_path, profile, monkeypatch):
    store = ResultStore(tmp_path)
    cold = run_chaos_suite(profile, ["snapbpf"], config=HOT,
                           fault_seed=5, n_requests=3, store=store)
    assert len(store) == 1

    # A warm rerun must come purely from disk: poison the execution path.
    import repro.harness.chaos as chaos_mod

    def explode(args):
        raise AssertionError("warm suite must not simulate")

    monkeypatch.setattr(chaos_mod, "_chaos_cell", explode)
    warm = run_chaos_suite(profile, ["snapbpf"], config=HOT,
                           fault_seed=5, n_requests=3, store=store)
    assert warm[0].fingerprint() == cold[0].fingerprint()


def test_chaos_key_covers_fault_config(profile):
    base = chaos_key(profile, "snapbpf", config=HOT, fault_seed=5)
    assert base == chaos_key(profile, "snapbpf", config=HOT, fault_seed=5)
    assert base != chaos_key(profile, "snapbpf", config=DEFAULT_CHAOS,
                             fault_seed=5)
    assert base != chaos_key(profile, "snapbpf", config=HOT, fault_seed=6)
    assert base != chaos_key(profile, "reap", config=HOT, fault_seed=5)


def test_render_chaos_table(profile):
    result = run_chaos_scenario(profile, "linux-ra", config=DEFAULT_CHAOS,
                                fault_seed=1, n_requests=2)
    rows = chaos_rows([result])
    assert rows[0][0] == "approach"
    assert rows[1][0] == "linux-ra"
    text = render_chaos([result])
    assert "linux-ra" in text
    assert "fault seed 1" in text


def test_node_crash_rate_keeps_single_node_fingerprints(profile):
    """Single-node chaos never draws from the node-crash stream, so a
    config that only adds ``node_crash_rate`` replays the exact same
    fingerprint — pre-cluster chaos baselines stay byte-identical."""
    import dataclasses

    base = run_chaos_scenario(profile, "snapbpf", config=HOT,
                              fault_seed=5, n_requests=3)
    with_rate = run_chaos_scenario(
        profile, "snapbpf",
        config=dataclasses.replace(HOT, node_crash_rate=0.5),
        fault_seed=5, n_requests=3)
    assert base.fingerprint() == with_rate.fingerprint()
    assert "node_crashes" not in base.fault_stats


def test_remote_fetch_rate_keeps_storeless_fingerprints(profile):
    """Chaos runs without a snapstore never draw from the remote-fetch
    stream, so a config that only adds remote-fetch rates replays the
    exact same fingerprint — pre-snapstore chaos baselines stay
    byte-identical."""
    import dataclasses

    base = run_chaos_scenario(profile, "snapbpf", config=HOT,
                              fault_seed=5, n_requests=3)
    with_rate = run_chaos_scenario(
        profile, "snapbpf",
        config=dataclasses.replace(HOT, remote_fetch_error_rate=0.5,
                                   remote_fetch_stall_rate=0.5),
        fault_seed=5, n_requests=3)
    assert base.fingerprint() == with_rate.fingerprint()
    assert "remote_fetch_errors" not in base.fault_stats


def test_supervised_suite_recovers_from_worker_kills(profile):
    """Chaos cells killed by the runner-level injector are retried and
    reproduce the serial, unfaulted fingerprints."""
    approaches = ["snapbpf", "reap"]
    clean = run_chaos_suite(profile, approaches, config=HOT,
                            fault_seed=5, n_requests=3, jobs=1)
    injector = SweepFaultInjector(seed=11, kill_rate=1.0)
    faulted = run_chaos_suite(profile, approaches, config=HOT,
                              fault_seed=5, n_requests=3, jobs=2,
                              max_retries=3, injector=injector)
    assert injector.worker_kills >= 1
    assert ([r.fingerprint() for r in faulted]
            == [r.fingerprint() for r in clean])


def test_supervised_suite_quarantines_poison_cell(profile):
    """A cell that dies on every attempt is dropped from the results and
    reported through failures_out instead of aborting the suite."""
    poison = chaos_key(profile, "snapbpf", HOT, 5, 3)

    class Targeted(SweepFaultInjector):
        def plan(self, key, attempt):
            if key == poison:
                return WorkerFault(kill=True)
            return None

    failures = []
    results = run_chaos_suite(profile, ["snapbpf", "reap"], config=HOT,
                              fault_seed=5, n_requests=3, jobs=1,
                              max_retries=1, keep_going=True,
                              injector=Targeted(), failures_out=failures)
    assert [r.approach for r in results] == ["reap"]
    assert len(failures) == 1
    assert failures[0].reason == "crash"
    assert failures[0].attempts == 2
    assert "snapbpf" in failures[0].label
