"""Report rendering edge cases."""

from repro.harness.figures import FigureData
from repro.harness.report import (
    render_figure,
    render_scenarios,
    render_table,
    scenario_rows,
)
from repro.metrics.results import ScenarioResult
from repro.vmm.microvm import InvocationStats


def test_empty_rows():
    assert render_table([], title="nothing") == "nothing"


def test_column_alignment():
    text = render_table([["name", "value"], ["a-very-long-name", "1"],
                         ["b", "1234567"]])
    lines = text.splitlines()
    assert len({line.index("  ") for line in lines if "  " in line}) >= 1
    # Header separator width matches the widest cell.
    assert lines[1].startswith("-" * len("a-very-long-name"))


def test_figure_rendering_includes_notes():
    data = FigureData(figure="9", ylabel="y", functions=["f1"],
                      series={"s": [0.5]}, notes="a note")
    text = render_figure(data)
    assert "Figure 9" in text and "a note" in text and "0.500" in text


def test_figure_without_notes():
    data = FigureData(figure="9", ylabel="y", functions=["f1"],
                      series={"s": [1.0]})
    assert "[" not in render_figure(data).splitlines()[0]


def _scenario(latencies=(0.1, 0.2, 0.3)):
    return ScenarioResult(
        function="json", approach="snapbpf", n_instances=len(latencies),
        invocations=[InvocationStats(vm_id=f"vm{i}", e2e_seconds=lat)
                     for i, lat in enumerate(latencies)],
        device_requests=7,
        device_p50_latency=100e-6, device_p95_latency=250e-6,
        device_p99_latency=300e-6)


def test_scenario_rows_have_percentile_columns():
    rows = scenario_rows([_scenario()])
    header, row = rows
    for column in ("p50 (ms)", "p95 (ms)", "p99 (ms)",
                   "dev p50 (us)", "dev p95 (us)", "dev p99 (us)"):
        assert column in header
    # p50 of (100, 200, 300) ms -> 200.0; device p95 250 us.
    assert row[header.index("p50 (ms)")] == "200.0"
    assert row[header.index("dev p95 (us)")] == "250"


def test_render_scenarios_table():
    text = render_scenarios([_scenario()], title="Scenario summary")
    assert "Scenario summary" in text
    assert "json" in text and "snapbpf" in text
    assert "p99 (ms)" in text


def test_scenario_rows_empty_result():
    rows = scenario_rows([ScenarioResult(function="f", approach="a",
                                         n_instances=0)])
    assert rows[1][rows[0].index("mean E2E (ms)")] == "0.0"
