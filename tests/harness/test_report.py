"""Report rendering edge cases."""

from repro.harness.figures import FigureData
from repro.harness.report import render_figure, render_table


def test_empty_rows():
    assert render_table([], title="nothing") == "nothing"


def test_column_alignment():
    text = render_table([["name", "value"], ["a-very-long-name", "1"],
                         ["b", "1234567"]])
    lines = text.splitlines()
    assert len({line.index("  ") for line in lines if "  " in line}) >= 1
    # Header separator width matches the widest cell.
    assert lines[1].startswith("-" * len("a-very-long-name"))


def test_figure_rendering_includes_notes():
    data = FigureData(figure="9", ylabel="y", functions=["f1"],
                      series={"s": [0.5]}, notes="a note")
    text = render_figure(data)
    assert "Figure 9" in text and "a note" in text and "0.500" in text


def test_figure_without_notes():
    data = FigureData(figure="9", ylabel="y", functions=["f1"],
                      series={"s": [1.0]})
    assert "[" not in render_figure(data).splitlines()[0]
