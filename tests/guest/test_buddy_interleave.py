"""Stateful buddy-allocator property: interleaved alloc/free sequences.

Complements the conservation test with a stateful workload that mirrors
what invocations actually do — allocate several tagged chunks, free some
mid-stream, allocate again from the recycled space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.buddy import BuddyAllocator
from repro.guest.kernel import GuestKernel, unmirror_gfn


@settings(max_examples=50, deadline=None)
@given(steps=st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 200)),
        st.tuples(st.just("free"), st.integers(0, 10)),
    ),
    min_size=1, max_size=30))
def test_interleaved_alloc_free(steps):
    guest = GuestKernel(mem_pages=4096, free_pfns=range(1024, 3072),
                        pv_marking=True)
    live: dict[str, set[int]] = {}
    counter = 0
    for op, arg in steps:
        if op == "alloc":
            if arg > guest.buddy.free_pages:
                continue
            counter += 1
            tag = f"t{counter}"
            gfns = guest.alloc_pages(tag, arg)
            pages = {unmirror_gfn(g) for g in gfns}
            assert len(pages) == arg
            for other in live.values():
                assert not (pages & other), "page handed out twice"
            assert all(1024 <= p < 3072 for p in pages)
            live[tag] = pages
        elif live:
            tag = list(live)[arg % len(live)]
            freed = guest.free_pages(tag)
            assert freed == len(live.pop(tag))
    # Free everything; the allocator must return to its initial size.
    for tag in list(live):
        guest.free_pages(tag)
    assert guest.buddy.free_pages == 2048
    assert guest.pages_allocated == guest.pages_freed


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20))
def test_fragmented_pool_exact_capacity(sizes):
    """Scattered 8-page fragments: capacity is exactly the seeded count
    regardless of request decomposition."""
    fragments = [p for base in range(0, 4096, 64)
                 for p in range(base, base + 8)]
    buddy = BuddyAllocator(fragments)
    total = buddy.free_pages
    assert total == len(fragments)
    got = 0
    for size in sizes:
        if size > buddy.free_pages:
            break
        got += len(buddy.alloc_pages(size))
    assert buddy.free_pages == total - got
