"""Buddy allocator: correctness + coalescing invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.buddy import MAX_ORDER, BuddyAllocator, GuestOOM


def test_seed_counts_pages():
    buddy = BuddyAllocator(range(0, 1024))
    assert buddy.free_pages == 1024


def test_seed_from_fragments():
    buddy = BuddyAllocator(list(range(0, 8)) + list(range(100, 104)))
    assert buddy.free_pages == 12


def test_alloc_block_alignment():
    buddy = BuddyAllocator(range(0, 1024))
    pfn = buddy.alloc_block(4)
    assert pfn % 16 == 0
    assert buddy.free_pages == 1024 - 16


def test_alloc_pages_exact_count_unique():
    buddy = BuddyAllocator(range(0, 1024))
    pfns = buddy.alloc_pages(100)
    assert len(pfns) == 100
    assert len(set(pfns)) == 100
    assert buddy.free_pages == 924


def test_allocated_pages_come_from_pool():
    pool = list(range(50, 100)) + list(range(200, 300))
    buddy = BuddyAllocator(pool)
    pfns = buddy.alloc_pages(120)
    assert set(pfns) <= set(pool)


def test_oom():
    buddy = BuddyAllocator(range(0, 16))
    with pytest.raises(GuestOOM):
        buddy.alloc_pages(17)
    with pytest.raises(GuestOOM):
        buddy.alloc_block(5)


def test_free_and_realloc():
    buddy = BuddyAllocator(range(0, 64))
    pfns = buddy.alloc_pages(64)
    assert buddy.free_pages == 0
    buddy.free_pages_list(pfns)
    assert buddy.free_pages == 64
    assert len(buddy.alloc_pages(64)) == 64


def test_coalescing_restores_large_blocks():
    buddy = BuddyAllocator(range(0, 1 << MAX_ORDER))
    pfns = buddy.alloc_pages(1 << MAX_ORDER)
    buddy.free_pages_list(pfns)
    # After freeing page-by-page, the full max-order block must coalesce.
    assert buddy.alloc_block(MAX_ORDER) == 0


def test_misaligned_free_rejected():
    buddy = BuddyAllocator(range(0, 64))
    buddy.alloc_pages(64)
    with pytest.raises(ValueError):
        buddy.free_block(3, 2)


def test_is_free():
    buddy = BuddyAllocator(range(0, 64))
    assert buddy.is_free(10)
    pfns = buddy.alloc_pages(64)
    assert not buddy.is_free(10)
    buddy.free_pages_list(pfns[:32])


def test_invalid_inputs():
    buddy = BuddyAllocator(range(0, 64))
    with pytest.raises(ValueError):
        buddy.alloc_pages(0)
    with pytest.raises(ValueError):
        buddy.alloc_block(MAX_ORDER + 1)


def test_deterministic_allocation_order():
    a = BuddyAllocator(range(0, 512)).alloc_pages(100)
    b = BuddyAllocator(range(0, 512)).alloc_pages(100)
    assert a == b


@settings(max_examples=50, deadline=None)
@given(
    spans=st.lists(
        st.tuples(st.integers(0, 4000), st.integers(1, 64)),
        min_size=1, max_size=12),
    requests=st.lists(st.integers(1, 128), min_size=1, max_size=8),
)
def test_alloc_free_conservation(spans, requests):
    """Property: any alloc/free sequence conserves pages, never hands out
    a page twice, and only hands out seeded pages."""
    pool = set()
    for start, length in spans:
        pool.update(range(start, start + length))
    buddy = BuddyAllocator(pool)
    total = buddy.free_pages
    assert total == len(pool)

    live: set[int] = set()
    for want in requests:
        if want > buddy.free_pages:
            with pytest.raises(GuestOOM):
                buddy.alloc_pages(want)
            continue
        got = buddy.alloc_pages(want)
        assert len(got) == want
        got_set = set(got)
        assert len(got_set) == want
        assert not (got_set & live), "double allocation"
        assert got_set <= pool, "invented pages"
        live |= got_set
        assert buddy.free_pages == total - len(live)

    buddy.free_pages_list(sorted(live))
    assert buddy.free_pages == total


@settings(max_examples=30, deadline=None)
@given(seed_pages=st.integers(32, 512))
def test_full_drain_refill_cycle(seed_pages):
    buddy = BuddyAllocator(range(0, seed_pages))
    pfns = buddy.alloc_pages(seed_pages)
    assert sorted(pfns) == list(range(seed_pages))
    buddy.free_pages_list(pfns)
    assert buddy.free_pages == seed_pages
    again = buddy.alloc_pages(seed_pages)
    assert sorted(again) == list(range(seed_pages))
