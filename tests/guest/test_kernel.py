"""Guest kernel: allocation tags, PV mirror marking."""

import pytest

from repro.guest.kernel import (
    MIRROR_BIT,
    GuestKernel,
    is_mirrored,
    mirror_gfn,
    unmirror_gfn,
)


def make_guest(pv=False):
    return GuestKernel(mem_pages=1024, free_pfns=range(512, 1024),
                       pv_marking=pv)


def test_mirror_helpers():
    assert mirror_gfn(5) == 5 | MIRROR_BIT
    assert unmirror_gfn(mirror_gfn(5)) == 5
    assert is_mirrored(mirror_gfn(5))
    assert not is_mirrored(5)


def test_alloc_without_pv_returns_plain_gfns():
    guest = make_guest(pv=False)
    gfns = guest.alloc_pages("a", 16)
    assert all(not is_mirrored(g) for g in gfns)
    assert all(512 <= g < 1024 for g in gfns)


def test_alloc_with_pv_returns_mirrored_gfns():
    guest = make_guest(pv=True)
    gfns = guest.alloc_pages("a", 16)
    assert all(is_mirrored(g) for g in gfns)
    assert all(512 <= unmirror_gfn(g) < 1024 for g in gfns)


def test_free_by_tag_and_reuse():
    guest = make_guest(pv=True)
    first = guest.alloc_pages("a", 256)
    assert guest.free_pages("a") == 256
    second = guest.alloc_pages("b", 256)
    # The buddy reuses the freed range (LIFO order).
    assert {unmirror_gfn(g) for g in second} == {unmirror_gfn(g)
                                                 for g in first}


def test_duplicate_tag_rejected():
    guest = make_guest()
    guest.alloc_pages("a", 4)
    with pytest.raises(ValueError):
        guest.alloc_pages("a", 4)


def test_free_unknown_tag_rejected():
    with pytest.raises(KeyError):
        make_guest().free_pages("ghost")


def test_counters():
    guest = make_guest()
    guest.alloc_pages("a", 8)
    guest.alloc_pages("b", 8)
    guest.free_pages("a")
    assert guest.pages_allocated == 16
    assert guest.pages_freed == 8
    assert list(guest.live_allocations) == ["b"]
