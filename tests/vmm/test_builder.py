"""Snapshot creation pipeline."""

import pytest

from repro.vmm.builder import SnapshotBuilder
from tests.conftest import drive


def test_build_produces_usable_snapshot(kernel, tiny_profile):
    report = drive(kernel.env,
                   SnapshotBuilder(kernel).build(tiny_profile))
    snapshot = report.snapshot
    assert snapshot.file.size_bytes == tiny_profile.mem_bytes
    assert snapshot.meta.free_spans == tiny_profile.free_spans
    # The produced snapshot restores like any other.
    space = kernel.spawn_space("restore")
    space.mmap(snapshot.mem_pages, file=snapshot.file, at=1 << 20)
    cost = drive(kernel.env, space.handle_fault((1 << 20) + 5, False))
    assert cost > 0


def test_serialization_writes_whole_memory_sequentially(kernel,
                                                        tiny_profile):
    report = drive(kernel.env,
                   SnapshotBuilder(kernel).build(tiny_profile))
    stats = kernel.device.stats
    assert stats.bytes_written == tiny_profile.mem_bytes
    # Large sequential chunks: almost every write follows its predecessor.
    assert stats.sequential_requests >= stats.write_requests - 1
    assert report.serialize_seconds > 0


def test_phases_all_take_time(kernel, tiny_profile):
    report = drive(kernel.env,
                   SnapshotBuilder(kernel).build(tiny_profile))
    assert report.boot_seconds > 0
    assert report.prewarm_seconds > 0
    assert report.total_seconds == pytest.approx(
        report.boot_seconds + report.prewarm_seconds
        + report.serialize_seconds)


def test_boot_memory_released_after_build(kernel, tiny_profile):
    drive(kernel.env, SnapshotBuilder(kernel).build(tiny_profile))
    # The boot sandbox's anonymous memory is gone; only page-cache pages
    # (none — nothing was read back) may remain.
    assert kernel.frames.counters.anon == 0


def test_zero_free_pages_variant(kernel, tiny_profile):
    report = drive(
        kernel.env,
        SnapshotBuilder(kernel).build(tiny_profile, zero_free_pages=True))
    zeros = set(report.snapshot.file.zero_pages())
    assert zeros == set(report.snapshot.meta.iter_free_gfns())
