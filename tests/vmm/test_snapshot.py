"""Snapshot building and metadata."""

from repro.storage.filestore import ZERO_PAGE
from repro.vmm.snapshot import build_snapshot


def test_snapshot_file_sized_to_guest_memory(kernel, tiny_profile):
    snap = build_snapshot(kernel, tiny_profile)
    assert snap.file.size_bytes == tiny_profile.mem_bytes
    assert snap.mem_pages == tiny_profile.mem_pages


def test_metadata_mirrors_profile_layout(kernel, tiny_profile):
    snap = build_snapshot(kernel, tiny_profile)
    assert snap.meta.free_spans == tiny_profile.free_spans
    assert snap.meta.free_pages == tiny_profile.free_pages_at_snapshot
    assert not snap.meta.guest_zeroed


def test_zeroed_variant_zeroes_exactly_free_pages(kernel, tiny_profile):
    snap = build_snapshot(kernel, tiny_profile, zero_free_pages=True,
                          suffix=".z")
    zeros = set(snap.file.zero_pages())
    assert zeros == set(snap.meta.iter_free_gfns())
    assert snap.meta.guest_zeroed


def test_unzeroed_variant_has_stale_content(kernel, tiny_profile):
    snap = build_snapshot(kernel, tiny_profile)
    assert snap.file.zero_pages() == []
    some_free = next(snap.meta.iter_free_gfns())
    assert snap.file.content(some_free) != ZERO_PAGE


def test_free_gfn_set_cached_and_correct(kernel, tiny_profile):
    snap = build_snapshot(kernel, tiny_profile)
    s1 = snap.meta.free_gfns
    assert s1 is snap.meta.free_gfns  # cached
    assert len(s1) == snap.meta.free_pages


def test_suffix_namespacing(kernel, tiny_profile):
    a = build_snapshot(kernel, tiny_profile, suffix=".a")
    b = build_snapshot(kernel, tiny_profile, suffix=".b")
    assert a.file.ino != b.file.ino
