"""MicroVM lifecycle."""

import pytest

from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.vmm.snapshot import build_snapshot
from repro.workloads.trace import Compute, TouchRun


@pytest.fixture
def snap(kernel, tiny_profile):
    return build_snapshot(kernel, tiny_profile)


def mmap_guest(vm, ra_pages=0):
    vm.space.mmap(vm.snapshot.mem_pages, file=vm.snapshot.file,
                  at=GUEST_BASE_VPN, ra_pages=ra_pages)


def test_invoke_reports_e2e_from_spawn(kernel, snap):
    vm = MicroVM(kernel, snap)
    mmap_guest(vm)
    trace = [Compute(0.1), TouchRun(0, 8, False, 0)]
    p = kernel.env.process(vm.invoke(trace))
    kernel.env.run(p)
    stats = p.value
    assert stats.e2e_seconds >= 0.1
    assert stats.pages_touched == 8
    assert stats.nested_faults == 8
    assert stats.vm_id == vm.vm_id


def test_unique_vm_ids(kernel, snap):
    assert MicroVM(kernel, snap).vm_id != MicroVM(kernel, snap).vm_id


def test_teardown_releases_private_memory(kernel, snap):
    vm = MicroVM(kernel, snap)
    mmap_guest(vm)
    trace = [TouchRun(0, 8, True, 0)]  # write: CoW anon pages
    p = kernel.env.process(vm.invoke(trace))
    kernel.env.run(p)
    assert kernel.frames.owner_frames(vm.vm_id) == 8
    vm.teardown()
    assert kernel.frames.owner_frames(vm.vm_id) == 0
    assert not vm.kvm.ept


def test_guest_vpn_translation(kernel, snap):
    vm = MicroVM(kernel, snap)
    assert vm.guest_vpn(5) == GUEST_BASE_VPN + 5


def test_anon_bytes_reported(kernel, snap):
    vm = MicroVM(kernel, snap)
    mmap_guest(vm)
    p = kernel.env.process(vm.invoke([TouchRun(0, 4, True, 0)]))
    kernel.env.run(p)
    assert p.value.anon_bytes_at_end == 4 * 4096
