"""Device-model property tests: conservation and monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.storage.device import PRIO_READAHEAD, PRIO_SYNC, IORequest
from repro.storage.ssd import SSDevice
from repro.units import PAGE_SIZE

request_strategy = st.tuples(
    st.integers(0, 1000),              # page offset
    st.integers(1, 64),                # pages
    st.sampled_from([PRIO_SYNC, PRIO_READAHEAD]),
)


@settings(max_examples=50, deadline=None)
@given(specs=st.lists(request_strategy, min_size=1, max_size=30))
def test_all_requests_complete_and_bytes_conserved(specs):
    env = Environment()
    ssd = SSDevice(env)
    events = []
    total_bytes = 0
    for page, count, prio in specs:
        nbytes = count * PAGE_SIZE
        total_bytes += nbytes
        events.append(ssd.submit(IORequest(page * PAGE_SIZE, nbytes,
                                           prio=prio)))
    env.run()
    assert all(e.processed and e.ok for e in events)
    assert ssd.stats.requests == len(specs)
    assert ssd.stats.bytes_read == total_bytes
    # Completions never precede submissions; clock advanced.
    for event in events:
        request = event.value
        assert request.complete_time >= request.submit_time
    assert env.now >= max(e.value.complete_time for e in events)


@settings(max_examples=30, deadline=None)
@given(count=st.integers(1, 64))
def test_bigger_reads_take_longer(count):
    def duration(npages):
        env = Environment()
        ssd = SSDevice(env)
        ssd.read(0, npages * PAGE_SIZE)
        env.run()
        return env.now

    small = duration(count)
    bigger = duration(count + 16)
    assert bigger > small


@settings(max_examples=30, deadline=None)
@given(ra_specs=st.lists(st.tuples(st.integers(0, 1000),
                                   st.integers(1, 64)),
                         min_size=6, max_size=20),
       sync_page=st.integers(0, 1000))
def test_sync_overtakes_saturated_readahead_queue(ra_specs, sync_page):
    """A sync request arriving behind a deep readahead backlog must not
    be the global straggler: priority admission lets it overtake the
    still-queued readahead requests (only already-admitted ones finish
    first)."""
    env = Environment()
    ssd = SSDevice(env, queue_depth=2)
    ra_events = [ssd.submit(IORequest(page * PAGE_SIZE,
                                      count * PAGE_SIZE,
                                      prio=PRIO_READAHEAD))
                 for page, count in ra_specs]
    sync = ssd.submit(IORequest(sync_page * PAGE_SIZE, PAGE_SIZE,
                                prio=PRIO_SYNC))
    env.run()
    sync_done = sync.value.complete_time
    ra_done = sorted(e.value.complete_time for e in ra_events)
    # At most queue_depth readahead requests (the admitted ones) may
    # complete before the sync read.
    earlier = sum(1 for t in ra_done if t < sync_done)
    assert earlier <= ssd.queue_depth + 1
    assert sync_done < ra_done[-1]
