"""I/O error injection and propagation through the stack."""

import pytest

from repro.storage.device import IOError_
from repro.units import MIB
from tests.conftest import drive


def test_device_fails_injected_request(kernel):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fail_next_requests = 1
    event = kernel.filestore.read_pages(file, 0, 4)

    def waiter():
        with pytest.raises(IOError_):
            yield event
        return "saw-error"

    assert drive(kernel.env, waiter()) == "saw-error"
    assert kernel.device.stats.errors == 1


def test_error_consumes_only_one_injection(kernel):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fail_next_requests = 1

    def sequence():
        with pytest.raises(IOError_):
            yield kernel.filestore.read_pages(file, 0, 1)
        done = yield kernel.filestore.read_pages(file, 1, 1)
        return done

    drive(kernel.env, sequence())
    assert kernel.device.stats.errors == 1
    assert kernel.device.stats.requests == 1  # only the success counted


def test_page_cache_drops_failed_pages_and_retries(kernel):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fail_next_requests = 1
    kernel.page_cache.populate(file, 0, 8)
    kernel.env.run()
    # Failed pages are gone — not stuck locked forever.
    assert kernel.page_cache.cached_pages() == 0
    assert kernel.frames.in_use == 0
    # A retry succeeds.
    kernel.page_cache.populate(file, 0, 8)
    kernel.env.run()
    assert kernel.page_cache.resident(file.ino, 7)


def test_fault_path_surfaces_eio_to_waiter(kernel):
    file = kernel.filestore.create("f", MIB)
    space = kernel.spawn_space("vm")
    space.mmap(64, file=file, at=1000, ra_pages=0)
    kernel.device.fail_next_requests = 1

    def faulter():
        with pytest.raises(IOError_):
            yield from space.handle_fault(1000, False)
        return "sigbus"

    assert drive(kernel.env, faulter()) == "sigbus"
    # The mapping was never installed.
    assert space.pte(1000) is None


def test_unwaited_readahead_error_is_silent(kernel):
    """A failing *async* readahead must not crash the simulation — like
    Linux, the error surfaces only if someone later needs the page."""
    file = kernel.filestore.create("f", MIB)
    kernel.device.fail_next_requests = 1
    kernel.page_cache.page_cache_ra_unbounded(file, 0, 32)
    kernel.env.run()  # must not raise
    assert kernel.page_cache.cached_pages() == 0
