"""I/O error injection and propagation through the stack."""

import pytest

from repro.faults import FaultSchedule
from repro.storage import BlockIOError, IOError_
from repro.units import MIB
from tests.conftest import drive


@pytest.fixture
def faults(kernel):
    """A zero-rate schedule installed on the kernel: nothing fires
    unless a test forces it through the injector hooks."""
    return FaultSchedule(seed=0).install(kernel)


def test_blockioerror_alias():
    assert IOError_ is BlockIOError
    assert issubclass(BlockIOError, IOError)


def test_device_fails_injected_request(kernel, faults):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next()
    event = kernel.filestore.read_pages(file, 0, 4)

    def waiter():
        with pytest.raises(BlockIOError):
            yield event
        return "saw-error"

    assert drive(kernel.env, waiter()) == "saw-error"
    assert kernel.device.stats.errors == 1
    assert kernel.device.stats.transient_errors == 1


def test_error_consumes_only_one_injection(kernel, faults):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next()

    def sequence():
        with pytest.raises(BlockIOError):
            yield kernel.filestore.read_pages(file, 0, 1)
        done = yield kernel.filestore.read_pages(file, 1, 1)
        return done

    drive(kernel.env, sequence())
    assert kernel.device.stats.errors == 1
    assert kernel.device.stats.requests == 1  # only the success counted


def test_failed_request_charges_busy_time(kernel, faults):
    """A failed request spends real device time: busy_time and the
    latency histogram must include it even though the success counters
    (requests, bytes_read) must not."""
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next()

    def read():
        with pytest.raises(BlockIOError):
            yield kernel.filestore.read_pages(file, 0, 4)

    drive(kernel.env, read())
    stats = kernel.device.stats
    assert stats.requests == 0
    assert stats.bytes_read == 0
    assert stats.errors == 1
    assert stats.busy_time > 0.0
    assert stats.latency.count == 1
    assert stats.latency.sum > 0.0


def test_persistent_error_poisons_extent(kernel, faults):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next(persistent=True)

    def sequence():
        with pytest.raises(BlockIOError) as first:
            yield kernel.filestore.read_pages(file, 0, 4)
        assert not first.value.transient
        # The same extent now fails without any forced error queued...
        with pytest.raises(BlockIOError):
            yield kernel.filestore.read_pages(file, 0, 4)
        # ...while a disjoint extent is unaffected.
        yield kernel.filestore.read_pages(file, 8, 4)
        return "done"

    assert drive(kernel.env, sequence()) == "done"
    assert kernel.device.stats.persistent_errors == 2
    assert kernel.device.stats.requests == 1


def test_page_cache_drops_failed_pages_and_retries(kernel, faults):
    kernel.page_cache.retry_policy = None  # fail waiters on first error
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next()
    kernel.page_cache.populate(file, 0, 8)
    kernel.env.run()
    # Failed pages are gone — not stuck locked forever.
    assert kernel.page_cache.cached_pages() == 0
    assert kernel.frames.in_use == 0
    # A retry succeeds.
    kernel.page_cache.populate(file, 0, 8)
    kernel.env.run()
    assert kernel.page_cache.resident(file.ino, 7)


def test_fault_path_surfaces_eio_to_waiter(kernel, faults):
    file = kernel.filestore.create("f", MIB)
    space = kernel.spawn_space("vm")
    space.mmap(64, file=file, at=1000, ra_pages=0)
    # Persistent: the page cache's retry ladder must not (and cannot)
    # heal it, so the fault surfaces even with the default policy.
    kernel.device.fault_injector.fail_next(persistent=True)

    def faulter():
        with pytest.raises(BlockIOError):
            yield from space.handle_fault(1000, False)
        return "sigbus"

    assert drive(kernel.env, faulter()) == "sigbus"
    # The mapping was never installed.
    assert space.pte(1000) is None


def test_unwaited_readahead_error_is_silent(kernel, faults):
    """A failing *async* readahead must not crash the simulation — like
    Linux, the error surfaces only if someone later needs the page."""
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next(persistent=True)
    kernel.page_cache.page_cache_ra_unbounded(file, 0, 32)
    kernel.env.run()  # must not raise
    assert kernel.page_cache.cached_pages() == 0
