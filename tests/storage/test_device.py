"""Block-device models: timing, queueing, priorities, stats."""

import pytest

from repro.sim import Environment
from repro.storage.device import (
    PRIO_READAHEAD,
    PRIO_SYNC,
    READ,
    IORequest,
)
from repro.storage.hdd import HDDevice
from repro.storage.ssd import SSDevice
from repro.units import KIB, MIB, PAGE_SIZE


def run_io(env, device, requests):
    events = [device.submit(r) for r in requests]
    env.run()
    return events


class TestIORequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            IORequest(0, 0)
        with pytest.raises(ValueError):
            IORequest(-1, 10)
        with pytest.raises(ValueError):
            IORequest(0, 10, op="scribble")

    def test_end(self):
        assert IORequest(4096, 8192).end == 12288


class TestSSD:
    def test_single_read_latency(self, env):
        ssd = SSDevice(env)
        ssd.read(0, PAGE_SIZE)
        env.run()
        # command overhead + transfer + media latency, well under 1 ms
        assert 50e-6 < env.now < 300e-6

    def test_bandwidth_bound_large_read(self, env):
        ssd = SSDevice(env)
        nbytes = 64 * MIB
        ssd.read(0, nbytes)
        env.run()
        assert env.now == pytest.approx(nbytes / ssd.read_bandwidth,
                                        rel=0.05)

    def test_queue_parallelism(self, env):
        """Random 4K reads overlap media time across queue slots."""
        ssd = SSDevice(env)
        serial_estimate = 32 * (ssd.read_command_overhead
                                + PAGE_SIZE / ssd.read_bandwidth
                                + ssd.read_media_latency)
        for i in range(32):
            ssd.read(i * 2 * PAGE_SIZE, PAGE_SIZE)
        env.run()
        assert env.now < serial_estimate / 2

    def test_capacity_bound(self, env):
        ssd = SSDevice(env, capacity_bytes=MIB)
        with pytest.raises(ValueError):
            ssd.read(MIB - PAGE_SIZE, 2 * PAGE_SIZE)

    def test_write_slower_than_read(self, env):
        ssd = SSDevice(env)
        ssd.read(0, PAGE_SIZE)
        env.run()
        read_time = env.now
        env2 = Environment()
        ssd2 = SSDevice(env2)
        ssd2.write(0, PAGE_SIZE)
        env2.run()
        assert env2.now > read_time

    def test_stats_accounting(self, env):
        ssd = SSDevice(env)
        ssd.read(0, 4 * PAGE_SIZE)
        ssd.write(0, PAGE_SIZE)
        env.run()
        st = ssd.stats
        assert st.requests == 2
        assert st.read_requests == 1 and st.write_requests == 1
        assert st.bytes_read == 4 * PAGE_SIZE
        assert st.bytes_written == PAGE_SIZE
        assert st.bytes_total == 5 * PAGE_SIZE

    def test_sequential_detection(self, env):
        ssd = SSDevice(env, queue_depth=1)
        ssd.read(0, PAGE_SIZE)
        ssd.read(PAGE_SIZE, PAGE_SIZE)       # sequential
        ssd.read(100 * PAGE_SIZE, PAGE_SIZE)  # random
        env.run()
        assert ssd.stats.sequential_requests == 1

    def test_priority_overtakes_queue(self, env):
        """A sync read submitted after many readahead reads finishes
        before most of them — the property SnapBPF's trigger relies on."""
        ssd = SSDevice(env)
        ra_events = [ssd.submit(IORequest(i * MIB, 512 * KIB, READ,
                                          prio=PRIO_READAHEAD))
                     for i in range(64)]
        sync = ssd.submit(IORequest(200 * MIB, PAGE_SIZE, READ,
                                    prio=PRIO_SYNC))
        env.run()
        sync_done = sync.value.complete_time
        ra_done = sorted(e.value.complete_time for e in ra_events)
        # The sync read must beat the vast majority of the RA stream.
        assert sync_done < ra_done[len(ra_done) // 4]

    def test_reset_stats(self, env):
        ssd = SSDevice(env)
        ssd.read(0, PAGE_SIZE)
        env.run()
        ssd.reset_stats()
        assert ssd.stats.requests == 0


class TestHDD:
    def test_random_read_pays_seek(self, env):
        hdd = HDDevice(env)
        hdd.read(500 * MIB, PAGE_SIZE)
        env.run()
        assert env.now > hdd.avg_seek_time  # dominated by mechanics

    def test_sequential_stream_fast(self, env):
        hdd = HDDevice(env)
        def stream():
            for i in range(16):
                yield hdd.read(i * 512 * KIB, 512 * KIB)
        env.process(stream())
        env.run()
        sequential_time = env.now

        env2 = Environment()
        hdd2 = HDDevice(env2)
        def scattered():
            for i in range(16):
                yield hdd2.read(i * 64 * MIB, 512 * KIB)
        env2.process(scattered())
        env2.run()
        # At 512 KiB requests, random access still pays a seek+rotation
        # per request: at least 3x slower than the sequential stream
        # (the gap widens as requests shrink — see the 4 KiB ablation).
        assert env2.now > 3 * sequential_time

    def test_queue_depth_forced_to_one(self, env):
        assert HDDevice(env).queue_depth == 1

    def test_rotational_latency_from_rpm(self, env):
        hdd = HDDevice(env, rpm=15000)
        assert hdd.avg_rotational_latency == pytest.approx(0.002)


class TestDeviceValidation:
    def test_positive_capacity_required(self, env):
        with pytest.raises(ValueError):
            SSDevice(env, capacity_bytes=0)

    def test_queue_depth_validation(self, env):
        with pytest.raises(ValueError):
            SSDevice(env, queue_depth=0)
