"""File store: namespace, extents, content tokens, page-granular I/O."""

import pytest

from repro.storage.filestore import ZERO_PAGE, FileStore, default_token
from repro.storage.ssd import SSDevice
from repro.units import MIB, PAGE_SIZE


@pytest.fixture
def store(env):
    return FileStore(env, SSDevice(env))


class TestNamespace:
    def test_create_open(self, store):
        f = store.create("a.snap", MIB)
        assert store.open("a.snap") is f
        assert store.by_ino(f.ino) is f
        assert store.exists("a.snap")

    def test_duplicate_create_rejected(self, store):
        store.create("a", MIB)
        with pytest.raises(FileExistsError):
            store.create("a", MIB)

    def test_open_missing(self, store):
        with pytest.raises(FileNotFoundError):
            store.open("nope")
        with pytest.raises(FileNotFoundError):
            store.by_ino(999)

    def test_unlink(self, store):
        f = store.create("a", MIB)
        store.unlink("a")
        assert not store.exists("a")
        with pytest.raises(FileNotFoundError):
            store.by_ino(f.ino)

    def test_sizes(self, store):
        with pytest.raises(ValueError):
            store.create("zero", 0)
        f = store.create("odd", PAGE_SIZE + 1)
        assert f.size_pages == 2

    def test_device_full(self, store):
        with pytest.raises(OSError):
            store.create("huge", store.device.capacity_bytes + PAGE_SIZE)

    def test_contiguous_extents(self, store):
        f1 = store.create("a", MIB)
        f2 = store.create("b", MIB)
        assert f2.device_offset == f1.device_offset + MIB


class TestContent:
    def test_default_token_nonzero_and_unique(self, store):
        f1 = store.create("a", MIB)
        f2 = store.create("b", MIB)
        assert f1.content(0) != ZERO_PAGE
        assert f1.content(0) != f1.content(1)
        assert f1.content(0) != f2.content(0)
        assert f1.content(3) == default_token(f1.ino, 3)

    def test_set_content_and_zero_scan(self, store):
        f = store.create("a", MIB)
        f.set_content(5, ZERO_PAGE)
        f.set_content(9, ZERO_PAGE)
        f.set_content(7, 12345)
        assert f.zero_pages() == [5, 9]
        assert f.content(7) == 12345

    def test_out_of_range_page(self, store):
        f = store.create("a", MIB)
        with pytest.raises(IndexError):
            f.content(f.size_pages)
        with pytest.raises(IndexError):
            f.set_content(-1, 0)


class TestIO:
    def test_read_pages_advances_time(self, store, env):
        f = store.create("a", MIB)
        store.read_pages(f, 0, 8)
        env.run()
        assert env.now > 0
        assert store.device.stats.bytes_read == 8 * PAGE_SIZE

    def test_single_contiguous_request(self, store, env):
        f = store.create("a", MIB)
        store.read_pages(f, 4, 32)
        env.run()
        assert store.device.stats.requests == 1

    def test_bounds_checked(self, store):
        f = store.create("a", MIB)
        with pytest.raises(IndexError):
            store.read_pages(f, 0, f.size_pages + 1)
        with pytest.raises(IndexError):
            store.read_pages(f, -1, 1)
        with pytest.raises(ValueError):
            store.read_pages(f, 0, 0)

    def test_write_pages(self, store, env):
        f = store.create("a", MIB)
        store.write_pages(f, 0, 4)
        env.run()
        assert store.device.stats.bytes_written == 4 * PAGE_SIZE

    def test_file_offsets_map_to_device_offsets(self, store, env):
        store.create("pad", MIB)
        f = store.create("a", MIB)
        ev = store.read_pages(f, 3, 1)
        env.run()
        assert ev.value.offset == f.device_offset + 3 * PAGE_SIZE
