"""Engine edge cases: urgent ordering, nested processes, reentrancy."""

import pytest



def test_urgent_beats_normal_at_same_time(env):
    """URGENT events (process wakeups, resource grants) fire before
    NORMAL events scheduled earlier at the same timestamp."""
    from repro.sim.engine import URGENT
    order = []
    env.timeout(0).callbacks.append(lambda e: order.append("normal"))
    urgent = env.event()
    urgent.callbacks.append(lambda e: order.append("urgent"))
    urgent.succeed(priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_deeply_nested_yield_from(env):
    def level(n):
        if n == 0:
            yield env.timeout(1)
            return 1
        value = yield from level(n - 1)
        return value + 1

    p = env.process(level(50))
    env.run()
    assert p.value == 51


def test_many_processes_same_event(env):
    event = env.event()
    procs = []

    def waiter(i):
        value = yield event
        return (i, value)

    for i in range(100):
        procs.append(env.process(waiter(i)))
    event.succeed("go")
    env.run()
    assert [p.value for p in procs] == [(i, "go") for i in range(100)]


def test_event_callback_can_schedule_more_events(env):
    fired = []

    def chain(event):
        fired.append(env.now)
        if len(fired) < 5:
            env.timeout(1).callbacks.append(chain)

    env.timeout(1).callbacks.append(chain)
    env.run()
    assert fired == [1, 2, 3, 4, 5]


def test_process_failing_before_first_yield(env):
    def bad():
        raise ValueError("immediate")
        yield  # pragma: no cover

    env.process(bad())
    with pytest.raises(ValueError, match="immediate"):
        env.run()


def test_process_waiting_on_failed_past_event(env):
    event = env.event()
    event._defused = True
    event.fail(RuntimeError("old failure"))
    env.run()

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            return str(exc)

    p = env.process(waiter())
    env.run()
    assert p.value == "old failure"


def test_zero_delay_timeout(env):
    def proc():
        yield env.timeout(0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0
