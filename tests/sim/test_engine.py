"""DES engine semantics: events, timeouts, processes, conditions."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
)


class TestEvent:
    def test_succeed_delivers_value(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed(42)
        env.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_processed_after_run(self, env):
        event = env.event()
        event.succeed()
        assert event.triggered and not event.processed
        env.run()
        assert event.processed


class TestTimeout:
    def test_advances_clock(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_ordering(self, env):
        order = []
        env.timeout(2.0).callbacks.append(lambda e: order.append("b"))
        env.timeout(1.0).callbacks.append(lambda e: order.append("a"))
        env.run()
        assert order == ["a", "b"]

    def test_same_time_fifo(self, env):
        order = []
        env.timeout(1.0).callbacks.append(lambda e: order.append(1))
        env.timeout(1.0).callbacks.append(lambda e: order.append(2))
        env.run()
        assert order == [1, 2]

    def test_timeout_value(self, env):
        def proc():
            value = yield env.timeout(1, value="hello")
            return value
        p = env.process(proc())
        env.run()
        assert p.value == "hello"


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return 99
        p = env.process(proc())
        env.run()
        assert p.value == 99 and env.now == 1

    def test_sequential_timeouts(self, env):
        def proc():
            yield env.timeout(1)
            yield env.timeout(2)
        env.process(proc())
        env.run()
        assert env.now == 3

    def test_wait_on_other_process(self, env):
        def inner():
            yield env.timeout(3)
            return "inner-done"
        def outer():
            result = yield env.process(inner())
            return result
        p = env.process(outer())
        env.run()
        assert p.value == "inner-done"

    def test_yield_from_composition(self, env):
        def sub():
            yield env.timeout(1)
            return 5
        def main():
            a = yield from sub()
            b = yield from sub()
            return a + b
        p = env.process(main())
        env.run()
        assert p.value == 10 and env.now == 2

    def test_no_yield_process(self, env):
        def proc():
            return 7
            yield  # pragma: no cover
        p = env.process(proc())
        env.run()
        assert p.value == 7

    def test_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1)
            raise ValueError("boom")
        def waiter():
            try:
                yield env.process(failing())
            except ValueError as exc:
                return str(exc)
        p = env.process(waiter())
        env.run()
        assert p.value == "boom"

    def test_unhandled_process_exception_raises_at_run(self, env):
        def failing():
            yield env.timeout(1)
            raise RuntimeError("unhandled")
        env.process(failing())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_yield_non_event_rejected(self, env):
        def proc():
            yield 42
        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(1)
        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_wait_already_processed_event(self, env):
        event = env.event()
        event.succeed("early")
        env.run()
        def proc():
            value = yield event
            return value
        p = env.process(proc())
        env.run()
        assert p.value == "early"

    def test_interrupt(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                return ("interrupted", intr.cause, env.now)
        p = env.process(sleeper())
        def interrupter():
            yield env.timeout(2)
            p.interrupt("wake-up")
        env.process(interrupter())
        env.run()
        assert p.value == ("interrupted", "wake-up", 2)

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)
        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of(self, env):
        t1, t2 = env.timeout(1, value="a"), env.timeout(3, value="b")
        def proc():
            results = yield env.all_of([t1, t2])
            return sorted(results.values())
        p = env.process(proc())
        env.run()
        assert p.value == ["a", "b"] and env.now == 3

    def test_any_of(self, env):
        t1, t2 = env.timeout(5, value="slow"), env.timeout(1, value="fast")
        def proc():
            results = yield env.any_of([t1, t2])
            return list(results.values())
        p = env.process(proc())
        env.run(p)
        assert p.value == ["fast"]

    def test_all_of_empty(self, env):
        def proc():
            yield env.all_of([])
            return "done"
        p = env.process(proc())
        env.run()
        assert p.value == "done"

    def test_all_of_failure_propagates(self, env):
        def failing():
            yield env.timeout(1)
            raise ValueError("x")
        def proc():
            with pytest.raises(ValueError):
                yield env.all_of([env.process(failing()), env.timeout(5)])
            return True
        p = env.process(proc())
        env.run(p)
        assert p.value is True


class TestRun:
    def test_run_until_time(self, env):
        env.timeout(10)
        env.run(until=5)
        assert env.now == 5

    def test_run_until_event(self, env):
        t = env.timeout(4, value="v")
        assert env.run(until=t) == "v"
        assert env.now == 4

    def test_run_until_event_starved(self, env):
        event = env.event()  # never triggered
        with pytest.raises(SimulationError):
            env.run(until=event)

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_clock_monotonic(self, env):
        stamps = []
        for delay in (3, 1, 2):
            env.timeout(delay).callbacks.append(
                lambda e: stamps.append(env.now))
        env.run()
        assert stamps == sorted(stamps)
