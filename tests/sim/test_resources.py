"""Resource (counted slots + priorities) and Store semantics."""

import pytest

from repro.sim import Resource, SimulationError, Store


def test_capacity_must_be_positive(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_immediate_grant_under_capacity(env):
    res = Resource(env, capacity=2)
    r1, r2 = res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert res.count == 2


def test_queueing_over_capacity(env):
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert r1.triggered and not r2.triggered
    assert res.queue_length == 1
    res.release(r1)
    assert r2.triggered
    assert res.count == 1


def test_release_without_hold_rejected(env):
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    with pytest.raises(SimulationError):
        res.release(r2)
    res.release(r1)


def test_fifo_within_priority(env):
    res = Resource(env, capacity=1)
    first = res.request()
    order = []
    for tag in ("a", "b", "c"):
        req = res.request()
        req.callbacks.append(lambda e, t=tag: order.append(t))
    res.release(first)
    held = [r for r in res._users]
    while held:
        res.release(held.pop())
        held = [r for r in res._users]
        env.run()
    assert order == ["a", "b", "c"]


def test_priority_overtakes_fifo(env):
    res = Resource(env, capacity=1)
    first = res.request()
    order = []
    low = res.request(priority=10)
    low.callbacks.append(lambda e: order.append("low"))
    high = res.request(priority=0)
    high.callbacks.append(lambda e: order.append("high"))
    res.release(first)
    env.run()
    res.release(high)
    env.run()
    assert order == ["high", "low"]


def test_cancel_removes_waiter(env):
    res = Resource(env, capacity=1)
    first = res.request()
    waiting = res.request()
    waiting.cancel()
    assert res.queue_length == 0
    res.release(first)
    assert res.count == 0


def test_resource_in_process_usage(env):
    res = Resource(env, capacity=2)
    active = [0]
    peaks = [0]

    def worker():
        req = res.request()
        yield req
        active[0] += 1
        peaks[0] = max(peaks[0], active[0])
        yield env.timeout(1)
        active[0] -= 1
        res.release(req)

    for _ in range(6):
        env.process(worker())
    env.run()
    assert peaks[0] == 2
    assert env.now == 3  # 6 workers, 2 at a time, 1s each


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")
        def proc():
            item = yield store.get()
            return item
        p = env.process(proc())
        env.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        def getter():
            item = yield store.get()
            return (item, env.now)
        p = env.process(getter())
        def putter():
            yield env.timeout(5)
            store.put("late")
        env.process(putter())
        env.run()
        assert p.value == ("late", 5)

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []
        def proc():
            for _ in range(3):
                got.append((yield store.get()))
        env.process(proc())
        env.run()
        assert got == [0, 1, 2]

    def test_len(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
