"""Whole-stack determinism: identical runs produce identical universes.

The reproduction's claims rest on deterministic replay — every figure
assertion assumes reruns agree bit-for-bit.
"""

from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.platform import FaaSNode, poisson_arrivals
from repro.workloads.profile import FunctionProfile
from repro.units import MIB


def profile():
    return FunctionProfile(name="det", mem_bytes=48 * MIB,
                           ws_bytes=4 * MIB, alloc_bytes=2 * MIB,
                           compute_seconds=0.02, seed=12)


def fingerprint(result):
    return (
        result.mean_e2e,
        result.max_e2e,
        result.peak_memory_bytes,
        result.end_memory_bytes,
        result.device_requests,
        result.device_bytes_read,
        result.cache_adds,
        tuple((inv.vm_id, inv.e2e_seconds, inv.nested_faults,
               inv.major_faults, inv.minor_faults, inv.cow_faults)
              for inv in result.invocations),
    )


def test_scenario_determinism_all_approaches():
    for approach in ("linux-nora", "linux-ra", "reap", "faast",
                     "faasnap", "snapbpf", "pv-ptes"):
        a = fingerprint(run_scenario(ScenarioSpec(profile(), approach,
                                                  n_instances=3)))
        b = fingerprint(run_scenario(ScenarioSpec(profile(), approach,
                                                  n_instances=3)))
        assert a == b, f"{approach} is nondeterministic"


def test_node_determinism():
    def run():
        p = profile()
        node = FaaSNode(make_kernel(), "snapbpf", [p], warm_pool_ttl=1.0)
        arrivals = poisson_arrivals([(p, 4.0)], duration=3.0, seed=5)
        report = node.run(arrivals)
        return [(r.function, r.arrival_time, r.latency, r.cold)
                for r in report.results], report.peak_memory_bytes

    assert run() == run()


def test_vary_inputs_determinism():
    a = fingerprint(run_scenario(ScenarioSpec(profile(), "snapbpf",
                                              n_instances=4,
                                              vary_inputs=True)))
    b = fingerprint(run_scenario(ScenarioSpec(profile(), "snapbpf",
                                              n_instances=4,
                                              vary_inputs=True)))
    assert a == b
