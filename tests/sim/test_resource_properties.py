"""Property: a Resource never exceeds capacity and always drains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(1, 8),
    jobs=st.lists(st.tuples(st.floats(0.0, 5.0), st.floats(0.01, 2.0),
                            st.integers(0, 10)),
                  min_size=1, max_size=40),
)
def test_capacity_respected_and_all_jobs_finish(capacity, jobs):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]
    finished = [0]

    def worker(delay, hold, priority):
        yield env.timeout(delay)
        request = resource.request(priority=priority)
        yield request
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        try:
            yield env.timeout(hold)
        finally:
            active[0] -= 1
            resource.release(request)
        finished[0] += 1

    for delay, hold, priority in jobs:
        env.process(worker(delay, hold, priority))
    env.run()
    assert finished[0] == len(jobs)
    assert peak[0] <= capacity
    assert resource.count == 0
    assert resource.queue_length == 0
