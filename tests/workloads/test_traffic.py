"""Traffic generator: catalog, tenancy, laziness, determinism."""

import itertools
import json

import pytest

from repro.workloads.traffic import (
    TrafficSpec,
    burst_schedule,
    expected_invocations,
    iter_invocations,
    traffic_functions,
)


def small_spec(**overrides):
    fields = dict(n_functions=500, n_tenants=4, total_rps=200.0,
                  duration=5.0, diurnal_period=4.0, n_bursts=2,
                  burst_multiplier=3.0, burst_duration=1.0, seed=3)
    fields.update(overrides)
    return TrafficSpec(**fields)


def test_catalog_shape():
    spec = small_spec()
    catalog = traffic_functions(spec)
    assert len(catalog) == spec.n_functions
    assert len({fn.name for fn in catalog}) == spec.n_functions
    assert {fn.tenant for fn in catalog} == set(range(spec.n_tenants))
    assert all(fn.shape in spec.shapes for fn in catalog)
    assert sum(fn.weight for fn in catalog) == pytest.approx(1.0)


def test_zipf_head_dominates():
    catalog = traffic_functions(small_spec())
    weights = sorted((fn.weight for fn in catalog), reverse=True)
    assert weights[0] == catalog[0].weight  # rank 0 is the head
    assert weights[0] > 50 * weights[-1]


def test_catalog_is_deterministic_per_seed():
    assert traffic_functions(small_spec()) == traffic_functions(small_spec())
    other = traffic_functions(small_spec(seed=4))
    assert other != traffic_functions(small_spec())


def test_spec_round_trips_through_json():
    spec = small_spec()
    data = json.loads(json.dumps(spec.canonical()))
    assert TrafficSpec.from_dict(data) == spec


def test_spec_validation():
    with pytest.raises(ValueError):
        small_spec(n_functions=0)
    with pytest.raises(ValueError):
        small_spec(n_tenants=0)
    with pytest.raises(ValueError):
        small_spec(total_rps=0.0)
    with pytest.raises(ValueError):
        small_spec(zipf_s=-1.0)
    with pytest.raises(ValueError):
        small_spec(diurnal_amplitude=1.5)
    with pytest.raises(ValueError):
        small_spec(shapes=())
    with pytest.raises(ValueError):
        small_spec(shapes=("no-such-shape",))


def test_invocations_are_lazy_and_ascending():
    # A 10-year stream would never fit in memory; islice proves the
    # iterator is lazy.
    spec = small_spec(duration=3.2e8, n_bursts=0)
    head = list(itertools.islice(iter_invocations(spec), 2000))
    assert len(head) == 2000
    ts = [inv.time for inv in head]
    assert ts == sorted(ts)


def test_invocations_deterministic_and_restartable():
    spec = small_spec()
    a = list(iter_invocations(spec))
    b = list(iter_invocations(spec))
    assert a == b
    assert len(a) == pytest.approx(expected_invocations(spec), rel=0.25)


def test_invocation_labels_match_catalog():
    spec = small_spec()
    by_name = {fn.name: fn for fn in traffic_functions(spec)}
    for inv in itertools.islice(iter_invocations(spec), 500):
        fn = by_name[inv.function]
        assert inv.tenant == fn.tenant
        assert inv.shape == fn.shape


def test_head_function_gets_head_share():
    spec = small_spec()
    head = traffic_functions(spec)[0]
    invs = list(iter_invocations(spec))
    share = sum(1 for inv in invs if inv.function == head.name) / len(invs)
    # Burst skew shifts tenant mixes, but the Zipf head still dominates.
    assert share > 3 * head.weight / 4


def test_burst_schedule_seeded_and_in_window():
    spec = small_spec()
    bursts = burst_schedule(spec)
    assert bursts == burst_schedule(spec)
    assert len(bursts) == spec.n_bursts
    for b in bursts:
        assert 0.0 <= b.start < spec.duration
        assert b.multiplier == spec.burst_multiplier
        assert 0 <= b.tenant < spec.n_tenants


def test_burst_window_densifies_its_tenant():
    spec = small_spec(total_rps=400.0, burst_multiplier=6.0,
                      n_bursts=1, burst_duration=2.0)
    (burst,) = burst_schedule(spec)
    invs = list(iter_invocations(spec))
    window = [inv for inv in invs if burst.active(inv.time)]
    in_window = sum(1 for inv in window if inv.tenant == burst.tenant)
    outside = [inv for inv in invs if not burst.active(inv.time)]
    out_share = (sum(1 for inv in outside if inv.tenant == burst.tenant)
                 / max(1, len(outside)))
    assert in_window / len(window) > out_share * 1.5
