"""ArrivalProcess family: thinning sampler, modulation, RNG compat."""

import random

import pytest

from repro.platform.workload import poisson_arrivals
from repro.workloads.trace import (
    ArrivalProcess,
    Burst,
    ConstantRate,
    ModulatedRate,
    peak_burst_multiplier,
)
from repro.workloads.profile import profile_by_name


def times(process, seed=7, duration=30.0):
    return list(process.sample(random.Random(seed), duration))


def test_constant_rate_matches_legacy_rng_stream():
    # The refactored poisson_arrivals must consume the exact expovariate
    # stream the historic single-rate generator used: one draw per
    # point, no acceptance draws at the envelope.
    rng = random.Random(3)
    legacy = []
    t = rng.expovariate(4.0)
    while t < 20.0:
        legacy.append(t)
        t += rng.expovariate(4.0)
    assert times(ConstantRate(4.0), seed=3, duration=20.0) == legacy


def test_poisson_arrivals_rides_on_constant_rate():
    profile = profile_by_name("json")
    arrivals = poisson_arrivals([(profile, 5.0)], duration=10.0, seed=11)
    expected = list(ConstantRate(5.0).sample(random.Random(11), 10.0))
    assert [a.time for a in arrivals] == expected
    assert all(a.function == profile.name for a in arrivals)


def test_sample_is_lazy_and_ascending():
    gen = ConstantRate(100.0).sample(random.Random(0), 1e9)
    first = [next(gen) for _ in range(1000)]  # would OOM if materialized
    assert first == sorted(first)
    assert len(set(first)) == len(first)


def test_sample_is_deterministic():
    assert times(ModulatedRate(5.0, diurnal_amplitude=0.5,
                               diurnal_period=10.0)) == \
        times(ModulatedRate(5.0, diurnal_amplitude=0.5,
                            diurnal_period=10.0))


def test_diurnal_modulation_shifts_density():
    # Period 20 s: first half-cycle is above base rate, second below.
    process = ModulatedRate(50.0, diurnal_amplitude=0.8,
                            diurnal_period=20.0)
    pts = times(process, seed=5, duration=20.0)
    crest = sum(1 for t in pts if t < 10.0)
    trough = len(pts) - crest
    assert crest > trough * 1.5


def test_burst_concentrates_arrivals():
    process = ModulatedRate(
        20.0, bursts=(Burst(start=5.0, duration=2.0, multiplier=8.0),))
    pts = times(process, seed=9, duration=10.0)
    in_burst = sum(1 for t in pts if 5.0 <= t < 7.0)
    # 2 s of a 10 s window at 8x the rate holds most of the mass.
    assert in_burst > len(pts) * 0.5
    for t in pts:
        assert 0.0 < t < 10.0


def test_rate_never_exceeds_peak():
    process = ModulatedRate(
        10.0, diurnal_amplitude=0.6, diurnal_period=7.0,
        bursts=(Burst(start=1.0, duration=3.0, multiplier=2.0),
                Burst(start=2.0, duration=4.0, multiplier=3.0)))
    peak = process.peak_rate
    for i in range(2000):
        assert process.rate(i * 0.01) <= peak + 1e-9


def test_overlapping_bursts_stack_multiplicatively():
    bursts = (Burst(start=0.0, duration=4.0, multiplier=2.0),
              Burst(start=2.0, duration=4.0, multiplier=3.0))
    assert peak_burst_multiplier(bursts) == pytest.approx(6.0)
    process = ModulatedRate(1.0, bursts=bursts)
    assert process.rate(3.0) == pytest.approx(6.0)
    assert process.rate(1.0) == pytest.approx(2.0)
    assert process.rate(5.0) == pytest.approx(3.0)


def test_thinned_density_tracks_expected_rate():
    # Integral of the rate over the horizon predicts the sample size.
    process = ModulatedRate(200.0, diurnal_amplitude=0.4,
                            diurnal_period=16.0)
    pts = times(process, seed=1, duration=16.0)
    # One full period: the sinusoid integrates to zero, so the mean
    # count is base * duration.
    assert len(pts) == pytest.approx(200.0 * 16.0, rel=0.08)


def test_validation():
    with pytest.raises(ValueError):
        ConstantRate(0.0)
    with pytest.raises(ValueError):
        ModulatedRate(1.0, diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        Burst(start=-1.0, duration=1.0, multiplier=2.0)
    with pytest.raises(ValueError):
        Burst(start=0.0, duration=0.0, multiplier=2.0)
    with pytest.raises(ValueError):
        Burst(start=0.0, duration=1.0, multiplier=0.5)
    with pytest.raises(ValueError):
        list(ConstantRate(1.0).sample(random.Random(0), 0.0))
    with pytest.raises(NotImplementedError):
        ArrivalProcess().rate(0.0)
