"""Trace generation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import MIB
from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import (
    Alloc,
    Free,
    TouchRun,
    generate_trace,
    trace_alloc_pages,
    trace_compute_seconds,
    working_set_pages,
)


def test_deterministic_per_seed(tiny_profile):
    assert generate_trace(tiny_profile, 0) == generate_trace(tiny_profile, 0)


def test_different_input_seed_changes_trace(tiny_profile):
    assert generate_trace(tiny_profile, 0) != generate_trace(tiny_profile, 1)


def test_ws_size_matches_profile(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    assert len(working_set_pages(trace)) == tiny_profile.ws_pages


def test_ws_within_used_spans(tiny_profile):
    used = set()
    for start, length in tiny_profile.used_spans:
        used.update(range(start, start + length))
    assert set(working_set_pages(generate_trace(tiny_profile, 0))) <= used


def test_ws_runs_disjoint(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    pages = [p for op in trace if isinstance(op, TouchRun)
             for p in range(op.start, op.start + op.count)]
    assert len(pages) == len(set(pages))


def test_alloc_volume_matches_profile(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    assert trace_alloc_pages(trace) == tiny_profile.alloc_pages


def test_every_alloc_freed(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    allocated = {op.tag for op in trace if isinstance(op, Alloc)}
    freed = {op.tag for op in trace if isinstance(op, Free)}
    assert allocated == freed and allocated


def test_frees_after_allocs(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    alloc_pos = {op.tag: i for i, op in enumerate(trace)
                 if isinstance(op, Alloc)}
    for i, op in enumerate(trace):
        if isinstance(op, Free):
            assert alloc_pos[op.tag] < i


def test_compute_budget_respected(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    assert trace_compute_seconds(trace) == pytest.approx(
        tiny_profile.compute_seconds, rel=0.01)


def test_writes_present_with_write_frac(tiny_profile):
    trace = generate_trace(tiny_profile, 0)
    writes = [op for op in trace if isinstance(op, TouchRun) and op.write]
    reads = [op for op in trace if isinstance(op, TouchRun) and not op.write]
    assert writes and reads


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), input_seed=st.integers(0, 10))
def test_trace_invariants_property(seed, input_seed):
    profile = FunctionProfile(
        name="prop", mem_bytes=32 * MIB, ws_bytes=3 * MIB,
        alloc_bytes=2 * MIB, compute_seconds=0.05, run_len_mean=6.0,
        seed=seed)
    trace = generate_trace(profile, input_seed)
    assert len(working_set_pages(trace)) == profile.ws_pages
    assert trace_alloc_pages(trace) == profile.alloc_pages
    mem = profile.mem_pages
    for op in trace:
        if isinstance(op, TouchRun):
            assert 0 <= op.start and op.start + op.count <= mem
            assert op.count > 0
