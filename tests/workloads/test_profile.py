"""Function profiles and the fragmented memory layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import MIB, PAGE_SIZE
from repro.workloads.profile import (
    FAASMEM_FUNCTIONS,
    FUNCTIONBENCH_FUNCTIONS,
    FUNCTIONS,
    FunctionProfile,
    profile_by_name,
)


def test_thirteen_functions():
    assert len(FUNCTIONS) == 13
    assert len(FUNCTIONBENCH_FUNCTIONS) == 10
    assert len(FAASMEM_FUNCTIONS) == 3
    assert {p.name for p in FAASMEM_FUNCTIONS} == {"html", "bfs", "bert"}


def test_profile_by_name():
    assert profile_by_name("bert").name == "bert"
    with pytest.raises(KeyError):
        profile_by_name("quantum")


def test_validation():
    with pytest.raises(ValueError):
        FunctionProfile("bad", mem_bytes=MIB, ws_bytes=2 * MIB,
                        alloc_bytes=0, compute_seconds=0.1)
    with pytest.raises(ValueError):
        FunctionProfile("bad", mem_bytes=0, ws_bytes=MIB,
                        alloc_bytes=0, compute_seconds=0.1)


def _layout_invariants(profile):
    used, free = profile.used_spans, profile.free_spans
    spans = sorted(used + free)
    # Exact partition of [0, mem_pages): no gaps, no overlaps.
    cursor = 0
    for start, length in spans:
        assert start == cursor, "gap or overlap in layout"
        assert length > 0
        cursor += length
    assert cursor == profile.mem_pages
    # Exact free budget.
    assert sum(l for _s, l in free) == profile.free_pages_at_snapshot
    assert sum(l for _s, l in used) == profile.used_pages


@pytest.mark.parametrize("profile", FUNCTIONS, ids=lambda p: p.name)
def test_paper_profiles_layout(profile):
    _layout_invariants(profile)
    # The buddy pool can satisfy the function's allocations.
    assert profile.free_pages_at_snapshot >= profile.alloc_pages
    # The working set fits the in-use area.
    assert profile.ws_pages <= profile.used_pages


def test_layout_deterministic(tiny_profile):
    assert tiny_profile.used_spans == tiny_profile.used_spans
    clone = FunctionProfile(
        name="tiny", mem_bytes=tiny_profile.mem_bytes,
        ws_bytes=tiny_profile.ws_bytes, alloc_bytes=tiny_profile.alloc_bytes,
        compute_seconds=tiny_profile.compute_seconds,
        write_frac=tiny_profile.write_frac,
        run_len_mean=tiny_profile.run_len_mean, seed=tiny_profile.seed)
    assert clone.free_spans == tiny_profile.free_spans


def test_free_memory_is_fragmented(tiny_profile):
    # More than one free span: fragmentation is the point.
    assert len(tiny_profile.free_spans) > 1


@settings(max_examples=40, deadline=None)
@given(
    mem_mib=st.integers(16, 256),
    ws_frac=st.floats(0.05, 0.5),
    alloc_frac=st.floats(0.0, 0.3),
    free_span=st.floats(4, 64),
    seed=st.integers(0, 1000),
)
def test_layout_invariants_property(mem_mib, ws_frac, alloc_frac,
                                    free_span, seed):
    mem = mem_mib * MIB
    profile = FunctionProfile(
        name="prop", mem_bytes=mem,
        ws_bytes=max(PAGE_SIZE, int(mem * ws_frac)),
        alloc_bytes=int(mem * alloc_frac),
        compute_seconds=0.1, free_span_pages=free_span, seed=seed)
    _layout_invariants(profile)
