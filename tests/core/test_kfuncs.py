"""The snapbpf_prefetch kfunc bridge."""


from repro.core.kfuncs import SNAPBPF_PREFETCH, register_snapbpf_kfunc
from repro.units import MIB


def test_registration_idempotent(kernel):
    register_snapbpf_kfunc(kernel)
    register_snapbpf_kfunc(kernel)  # second call is a no-op
    assert SNAPBPF_PREFETCH in kernel.kfuncs
    assert kernel.kfuncs.get(SNAPBPF_PREFETCH).n_args == 3


def test_prefetch_fills_page_cache(kernel):
    register_snapbpf_kfunc(kernel)
    file = kernel.filestore.create("snap", MIB)
    spec = kernel.kfuncs.get(SNAPBPF_PREFETCH)
    issued = spec.func(file.ino, 8, 16)
    assert issued == 16
    kernel.env.run()
    assert kernel.page_cache.resident(file.ino, 8)
    assert kernel.page_cache.resident(file.ino, 23)
    assert not kernel.page_cache.resident(file.ino, 24)


def test_unknown_ino_returns_zero(kernel):
    register_snapbpf_kfunc(kernel)
    spec = kernel.kfuncs.get(SNAPBPF_PREFETCH)
    assert spec.func(9999, 0, 4) == 0
    assert kernel.page_cache.cached_pages() == 0


def test_range_clipped_to_file(kernel):
    register_snapbpf_kfunc(kernel)
    file = kernel.filestore.create("snap", MIB)  # 256 pages
    spec = kernel.kfuncs.get(SNAPBPF_PREFETCH)
    assert spec.func(file.ino, 250, 100) == 6
    kernel.env.run()
    assert kernel.page_cache.cached_pages(file.ino) == 6


def test_cpu_cost_charged_to_kprobe_side_cost(kernel):
    register_snapbpf_kfunc(kernel)
    file = kernel.filestore.create("snap", MIB)
    spec = kernel.kfuncs.get(SNAPBPF_PREFETCH)
    assert kernel.kprobes.side_cost == 0.0
    spec.func(file.ino, 0, 32)
    assert kernel.kprobes.side_cost > 0.0
