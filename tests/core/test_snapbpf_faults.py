"""SnapBPF degradation ladder: every BPF-plane failure falls back to
plain demand paging instead of failing the sandbox."""

import pytest

from repro.core.approach import SnapBPF
from repro.faults import FaultConfig, FaultSchedule
from repro.harness.experiment import make_kernel
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE
from repro.units import DEFAULT_READAHEAD_PAGES
from repro.vmm.microvm import GUEST_BASE_VPN
from repro.workloads.trace import generate_trace


@pytest.fixture
def prepared(tiny_profile):
    kernel = make_kernel()
    approach = SnapBPF(kernel)
    trace = generate_trace(tiny_profile, 0)
    kernel.env.run(kernel.env.process(
        approach.prepare(tiny_profile, trace), name="prepare"))
    return kernel, approach, trace


def run_one(kernel, approach, profile, trace, vm_id="vm0"):
    def body():
        vm = yield from approach.spawn(profile, vm_id)
        stats = yield from vm.invoke(trace)
        return vm, stats
    process = kernel.env.process(body(), name="invoke")
    kernel.env.run(process)
    return process.value


def test_prefetch_attach_failure_falls_back(prepared, tiny_profile):
    kernel, approach, trace = prepared
    FaultSchedule(seed=0).install(kernel)
    kernel.kprobes.fault_injector.fail_next_attach()

    vm, stats = run_one(kernel, approach, tiny_profile, trace)

    assert approach.prefetch_fallbacks == 1
    assert kernel.faults.stats.attach_failures == 1
    # The prefetch program never made it onto the hook.
    assert kernel.kprobes.attached(HOOK_ADD_TO_PAGE_CACHE) == []
    # Fallback re-enabled default kernel readahead on the snapshot
    # mapping (SnapBPF normally runs it at ra_pages=0).
    vma = vm.space.vma_at(GUEST_BASE_VPN)
    assert vma.ra.ra_pages == DEFAULT_READAHEAD_PAGES
    # The invocation itself completed normally.
    assert stats is not None
    approach.post_invoke(vm)


def test_map_capacity_squeeze_falls_back(prepared, tiny_profile):
    kernel, approach, trace = prepared
    assert len(approach.groups) > 1  # the squeeze below must bite
    FaultSchedule(
        seed=0, config=FaultConfig(map_capacity_cap=1)).install(kernel)

    _vm, stats = run_one(kernel, approach, tiny_profile, trace)

    assert approach.prefetch_fallbacks == 1
    assert kernel.faults.stats.map_squeezes >= 1
    assert stats is not None


def test_fallback_spawn_is_not_sticky(prepared, tiny_profile):
    """Only the faulted spawn degrades; the next one prefetches again."""
    kernel, approach, trace = prepared
    FaultSchedule(seed=0).install(kernel)
    kernel.kprobes.fault_injector.fail_next_attach()
    vm0, _ = run_one(kernel, approach, tiny_profile, trace, vm_id="vm0")
    approach.post_invoke(vm0)
    vm1, _ = run_one(kernel, approach, tiny_profile, trace, vm_id="vm1")
    approach.post_invoke(vm1)
    assert approach.prefetch_fallbacks == 1
    assert "vm1" in approach.map_load_seconds  # prefetch path ran


def test_capture_attach_failure_degrades_record(tiny_profile):
    """A capture attach failure during prepare leaves the working set
    empty but must not break recording or later spawns."""
    kernel = make_kernel()
    FaultSchedule(seed=0).install(kernel)
    kernel.kprobes.fault_injector.fail_next_attach()
    approach = SnapBPF(kernel)
    trace = generate_trace(tiny_profile, 0)
    kernel.env.run(kernel.env.process(
        approach.prepare(tiny_profile, trace), name="prepare"))

    assert approach.capture_attach_failures == 1
    assert approach.groups == []
    assert approach.captured_pages == 0

    _vm, stats = run_one(kernel, approach, tiny_profile, trace)
    assert stats is not None
