"""Offset grouping (§3.1): unit + property tests on its invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    GROUP_RECORD_BYTES,
    Group,
    group_offsets,
    groups_metadata_bytes,
    total_pages,
)


def test_empty():
    assert group_offsets([]) == []


def test_single_run_merges():
    groups = group_offsets([(10, 5), (11, 6), (12, 7)])
    assert len(groups) == 1
    assert (groups[0].start, groups[0].count) == (10, 3)
    assert groups[0].first_access_ns == 5


def test_gap_splits_groups():
    groups = group_offsets([(10, 1), (11, 2), (20, 3)])
    assert [(g.start, g.count) for g in
            sorted(groups, key=lambda g: g.start)] == [(10, 2), (20, 1)]


def test_sorted_by_earliest_access():
    # Spatially later pages accessed first must be prefetched first.
    groups = group_offsets([(100, 50), (101, 60), (5, 200), (6, 210)])
    assert [(g.start, g.count) for g in groups] == [(100, 2), (5, 2)]


def test_group_timestamp_is_min_of_members():
    groups = group_offsets([(10, 300), (11, 100), (12, 200)])
    assert groups[0].first_access_ns == 100


def test_duplicate_offsets_deduped():
    groups = group_offsets([(10, 5), (10, 99), (11, 6)])
    assert total_pages(groups) == 2


def test_tie_broken_by_start_for_determinism():
    groups = group_offsets([(50, 7), (10, 7)])
    assert [g.start for g in groups] == [10, 50]


def test_metadata_bytes():
    groups = group_offsets([(1, 1), (5, 2), (9, 3)])
    assert groups_metadata_bytes(groups) == 3 * GROUP_RECORD_BYTES
    assert groups_metadata_bytes([]) == 1  # minimal file


def test_group_validation():
    with pytest.raises(ValueError):
        Group(start=0, count=0, first_access_ns=0)
    with pytest.raises(ValueError):
        Group(start=-1, count=1, first_access_ns=0)


offsets_strategy = st.dictionaries(
    keys=st.integers(0, 5000), values=st.integers(0, 10**9),
    min_size=0, max_size=400)


@settings(max_examples=100, deadline=None)
@given(entries=offsets_strategy)
def test_grouping_properties(entries):
    """Coverage, disjointness, maximality, and temporal ordering."""
    groups = group_offsets(entries.items())

    # Exact coverage: union of groups == input offsets.
    covered = set()
    for g in groups:
        span = set(range(g.start, g.end))
        assert not (span & covered), "groups overlap"
        covered |= span
    assert covered == set(entries)

    # Maximality: no two groups are spatially adjacent (they would have
    # been merged).
    starts = {g.start: g for g in groups}
    for g in groups:
        assert g.end not in starts, "adjacent groups not merged"

    # Temporal order: non-decreasing first-access timestamps.
    stamps = [g.first_access_ns for g in groups]
    assert stamps == sorted(stamps)

    # Each group's timestamp is the min over its members.
    for g in groups:
        members = [entries[o] for o in range(g.start, g.end)]
        assert g.first_access_ns == min(members)
