"""SnapBPF end-to-end invariants: no WS file, metadata-only storage,
page-cache dedup, online allocation filtering, self-disabling prefetch."""

import pytest

from repro.core.approach import PVPTEsOnly, SnapBPF
from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE
from repro.workloads.trace import generate_trace, working_set_pages


@pytest.fixture
def prepared(tiny_profile):
    kernel = make_kernel()
    approach = SnapBPF(kernel)
    trace = generate_trace(tiny_profile, 0)
    prep = kernel.env.process(approach.prepare(tiny_profile, trace))
    kernel.env.run(prep)
    return kernel, approach, trace


class TestCapture:
    def test_captures_exactly_the_working_set(self, prepared, tiny_profile):
        _k, approach, trace = prepared
        ws = working_set_pages(trace)
        captured = set()
        for group in approach.groups:
            captured.update(range(group.start, group.end))
        # PV marking keeps allocations out of the page cache, so the
        # captured set is exactly the snapshot working set — no
        # allocation pollution, no readahead pollution.
        assert captured == set(ws)
        assert approach.captured_pages == len(ws)

    def test_groups_sorted_by_first_access(self, prepared, tiny_profile):
        _k, approach, trace = prepared
        ws = working_set_pages(trace)
        rank = {page: i for i, page in enumerate(ws)}
        group_ranks = [min(rank[p] for p in range(g.start, g.end))
                       for g in approach.groups]
        assert group_ranks == sorted(group_ranks)

    def test_metadata_tiny_compared_to_ws(self, prepared, tiny_profile):
        _k, approach, _t = prepared
        # Offsets, not pages: orders of magnitude smaller than the WS.
        assert approach.metadata_bytes < tiny_profile.ws_bytes / 100

    def test_capture_program_detached_after_prepare(self, prepared):
        kernel, _a, _t = prepared
        assert kernel.kprobes.attached(HOOK_ADD_TO_PAGE_CACHE) == []

    def test_no_ws_file_created(self, prepared, tiny_profile):
        kernel, _a, _t = prepared
        names = [name for name in kernel.filestore._files
                 if name.endswith(".ws")]
        assert names == []


class TestInvocation:
    def run_one(self, kernel, approach, profile, trace, vm_id="vm0"):
        def body():
            vm = yield from approach.spawn(profile, vm_id)
            stats = yield from vm.invoke(trace)
            return vm, stats
        process = kernel.env.process(body())
        kernel.env.run(process)
        return process.value

    def test_prefetch_program_self_detaches(self, prepared, tiny_profile):
        kernel, approach, trace = prepared
        vm, _stats = self.run_one(kernel, approach, tiny_profile, trace)
        # The program disabled itself after issuing the last group.
        assert kernel.kprobes.attached(HOOK_ADD_TO_PAGE_CACHE) == []
        approach.post_invoke(vm)

    def test_working_set_lands_in_page_cache(self, prepared, tiny_profile):
        kernel, approach, trace = prepared
        self.run_one(kernel, approach, tiny_profile, trace)
        ino = approach.snapshot.file.ino
        for group in approach.groups:
            for page in range(group.start, group.end):
                assert kernel.page_cache.resident(ino, page)

    def test_allocations_never_fetch_snapshot(self, prepared, tiny_profile):
        kernel, approach, trace = prepared
        vm, stats = self.run_one(kernel, approach, tiny_profile, trace)
        assert stats.pv_faults >= tiny_profile.alloc_pages
        ino = approach.snapshot.file.ino
        free_gfn = next(approach.snapshot.meta.iter_free_gfns())
        assert not kernel.page_cache.resident(ino, free_gfn)

    def test_map_load_overhead_small_fraction_of_e2e(self, tiny_profile):
        result = run_scenario(ScenarioSpec(tiny_profile, SnapBPF.name))
        load = result.extra["map_load_seconds"]
        assert 0 < load < 0.05 * result.mean_e2e

    def test_dedup_across_instances(self, tiny_profile):
        single = run_scenario(ScenarioSpec(tiny_profile, SnapBPF.name, n_instances=1))
        ten = run_scenario(ScenarioSpec(tiny_profile, SnapBPF.name, n_instances=10))
        assert ten.device_bytes_read <= 1.1 * single.device_bytes_read
        assert ten.peak_memory_bytes < 5 * single.peak_memory_bytes

    def test_content_fidelity(self, prepared, tiny_profile):
        kernel, approach, trace = prepared
        vm, _stats = self.run_one(kernel, approach, tiny_profile, trace)
        snapshot = approach.snapshot
        for gfn in working_set_pages(trace)[:64]:
            pte = vm.space.pte(vm.guest_vpn(gfn))
            assert pte is not None
            assert pte.frame.content == snapshot.file.content(gfn)



class TestTable1:
    def test_snapbpf_row(self):
        row = SnapBPF.table1_row()
        assert row["mechanism"] == "eBPF"
        assert row["space"] == "Kernel-space"
        assert row["on_disk_ws_serialization"] == "No"
        assert row["in_memory_ws_dedup"] == "Yes"
        assert row["stateless_alloc_filtering"] == "Yes"
        assert row["snapshot_prescan"] == "No"


class TestPVOnly:
    def test_pv_only_registered_and_configured(self):
        assert PVPTEsOnly.pv_marking is True
        assert PVPTEsOnly.name == "pv-ptes"

    def test_pv_only_avoids_allocation_io(self, alloc_heavy_profile):
        from repro.baselines.linux import LinuxRA
        ra = run_scenario(ScenarioSpec(alloc_heavy_profile, LinuxRA.name))
        pv = run_scenario(ScenarioSpec(alloc_heavy_profile, PVPTEsOnly.name))
        assert pv.device_bytes_read < 0.6 * ra.device_bytes_read
        assert pv.mean_e2e < ra.mean_e2e
