"""The SnapBPF eBPF programs: verification + behavioural semantics."""

import pytest

from repro.core.grouping import Group
from repro.core.kfuncs import SNAPBPF_PREFETCH
from repro.core.progs import (
    build_capture_program,
    build_prefetch_program,
    load_groups,
    make_events_ringbuf,
    make_groups_map,
    make_state_map,
)
from repro.ebpf.interp import Interpreter, pack_u64
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.kprobe import RET_DETACH_SELF, KprobeManager
from repro.ebpf.verifier import VerificationError, Verifier
from repro.mm.page_cache import HOOK_CTX_SIZE


@pytest.fixture
def kfuncs():
    registry = KfuncRegistry()
    registry.register(SNAPBPF_PREFETCH, lambda ino, start, count: count,
                      n_args=3)
    return registry


class TestCaptureProgram:
    def test_passes_verification(self):
        prog = build_capture_program(42, make_events_ringbuf("events"))
        Verifier(ctx_size=HOOK_CTX_SIZE).verify(prog)

    def test_streams_offset_with_timestamp(self):
        events = make_events_ringbuf("events")
        prog = build_capture_program(42, events)
        clock = [1000]
        interp = Interpreter(time_ns=lambda: clock[0])
        interp.run(prog, pack_u64(42, 7))
        clock[0] = 2000
        interp.run(prog, pack_u64(42, 9))
        assert events.consume_u64s() == [(7, 1000), (9, 2000)]

    def test_filters_other_inodes(self):
        events = make_events_ringbuf("events")
        prog = build_capture_program(42, events)
        Interpreter().run(prog, pack_u64(41, 7))
        assert events.consume_u64s() == []

    def test_reinsertion_emits_second_event(self):
        # Dedup (keep FIRST access) is the consumer's job now: the
        # in-kernel side just streams every insertion.
        events = make_events_ringbuf("events")
        prog = build_capture_program(42, events)
        clock = [100]
        interp = Interpreter(time_ns=lambda: clock[0])
        interp.run(prog, pack_u64(42, 7))
        clock[0] = 999
        interp.run(prog, pack_u64(42, 7))  # re-insertion after eviction
        assert events.consume_u64s() == [(7, 100), (7, 999)]

    def test_full_ring_drops_event_and_returns_ok(self):
        events = make_events_ringbuf("events", max_entries=1)
        prog = build_capture_program(42, events)
        interp = Interpreter()
        assert interp.run(prog, pack_u64(42, 1)).r0 == 0
        assert interp.run(prog, pack_u64(42, 2)).r0 == 0  # dropped, no fault
        assert events.dropped == 1
        assert events.consume_u64s() == [(1, 0)]


class TestPrefetchProgram:
    def make(self, groups, kfuncs, ino=42):
        groups_map = make_groups_map("g", len(groups))
        state_map = make_state_map("s")
        load_groups(groups_map, groups)
        prog = build_prefetch_program(ino, groups_map, state_map)
        Verifier(ctx_size=HOOK_CTX_SIZE, kfuncs=kfuncs).verify(prog)
        return prog, state_map

    def test_issues_all_groups_in_order(self):
        issued = []
        kfuncs = KfuncRegistry()
        kfuncs.register(SNAPBPF_PREFETCH,
                        lambda ino, start, count: issued.append(
                            (ino, start, count)) or 0, n_args=3)
        groups = [Group(100, 4, 1), Group(7, 2, 2), Group(900, 1, 3)]
        prog, _state = self.make(groups, kfuncs)
        result = Interpreter(kfuncs=kfuncs).run(prog, pack_u64(42, 0))
        assert issued == [(42, 100, 4), (42, 7, 2), (42, 900, 1)]
        assert result.r0 == RET_DETACH_SELF

    def test_done_flag_blocks_reentry(self):
        calls = []
        kfuncs = KfuncRegistry()
        kfuncs.register(SNAPBPF_PREFETCH,
                        lambda *a: calls.append(a) or 0, n_args=3)
        prog, state = self.make([Group(1, 1, 1)], kfuncs)
        interp = Interpreter(kfuncs=kfuncs)
        interp.run(prog, pack_u64(42, 0))
        second = interp.run(prog, pack_u64(42, 5))
        assert len(calls) == 1
        assert second.r0 == 0  # idle exit, not detach

    def test_other_inode_does_not_trigger(self):
        calls = []
        kfuncs = KfuncRegistry()
        kfuncs.register(SNAPBPF_PREFETCH,
                        lambda *a: calls.append(a) or 0, n_args=3)
        prog, _state = self.make([Group(1, 1, 1)], kfuncs)
        result = Interpreter(kfuncs=kfuncs).run(prog, pack_u64(41, 0))
        assert calls == [] and result.r0 == 0

    def test_rejected_without_kfunc(self):
        groups_map = make_groups_map("g", 1)
        state_map = make_state_map("s")
        prog = build_prefetch_program(42, groups_map, state_map)
        with pytest.raises(VerificationError, match="unregistered kfunc"):
            Verifier(ctx_size=HOOK_CTX_SIZE).verify(prog)

    def test_self_detaches_via_kprobe_manager(self, kfuncs):
        prog, _state = self.make([Group(1, 2, 1)], kfuncs)
        kp = KprobeManager(kfuncs=kfuncs)
        kp.declare_hook("add_to_page_cache_lru", HOOK_CTX_SIZE)
        kp.attach("add_to_page_cache_lru", prog)
        kp.fire("add_to_page_cache_lru", pack_u64(42, 0))
        assert kp.attached("add_to_page_cache_lru") == []

    def test_load_groups_requires_sentinel_slot(self):
        groups = [Group(i * 10, 1, i) for i in range(4)]
        groups_map = make_groups_map("g", 3)  # too small
        with pytest.raises(ValueError):
            load_groups(groups_map, groups)

    def test_empty_groups_detaches_immediately(self, kfuncs):
        prog, _state = self.make([], kfuncs)
        result = Interpreter(kfuncs=kfuncs).run(prog, pack_u64(42, 0))
        assert result.r0 == RET_DETACH_SELF
