"""Benchmark harness configuration.

Each benchmark file regenerates one table/figure of the paper (or one
ablation from DESIGN.md).  Scenario runs are shared through a session-
scoped :class:`ResultCache` — Figure 3b and 3c reuse the same concurrent
runs, Figure 3a and 4 share their single-instance SnapBPF runs, exactly
as the paper measures once and reports twice.

Rendered outputs are written to ``results/*.txt`` so EXPERIMENTS.md can
be checked against a fresh run.

Environment knobs:
  REPRO_BENCH_FUNCTIONS=json,bert   subset the 13 functions (quick runs)
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.experiment import ResultCache
from repro.workloads.profile import FUNCTIONS

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def selected_functions():
    wanted = os.environ.get("REPRO_BENCH_FUNCTIONS")
    if not wanted:
        return list(FUNCTIONS)
    names = {name.strip() for name in wanted.split(",")}
    return [p for p in FUNCTIONS if p.name in names]


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    return ResultCache()


@pytest.fixture(scope="session")
def functions():
    return selected_functions()


@pytest.fixture(scope="session")
def record():
    """Write a rendered table to results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
