"""Benchmark harness configuration.

Each benchmark file regenerates one table/figure of the paper (or one
ablation from DESIGN.md).  Scenario runs are shared through a session-
scoped :class:`ResultCache` — Figure 3b and 3c reuse the same concurrent
runs, Figure 3a and 4 share their single-instance SnapBPF runs, exactly
as the paper measures once and reports twice.

Rendered outputs are written to ``results/*.txt`` so EXPERIMENTS.md can
be checked against a fresh run.

Environment knobs:
  REPRO_BENCH_FUNCTIONS=json,bert   subset the 13 functions (quick runs)
  REPRO_BENCH_JOBS=4                pre-sweep the figure matrix across N
                                    worker processes (results identical)
  REPRO_BENCH_CACHE_DIR=.sweep-cache  persist scenario results on disk;
                                    warm reruns simulate nothing
  REPRO_BENCH_NO_CACHE=1            ignore the cache dir for this run
  REPRO_BENCH_TIMEOUT=300           per-cell deadline (seconds) for the
                                    pre-sweep's supervisor
  REPRO_BENCH_MAX_RETRIES=2         retries per cell for worker crashes
                                    and deadline expiries
  REPRO_BENCH_KEEP_GOING=1          quarantine permanently-failed cells
                                    instead of aborting the pre-sweep
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.experiment import ResultCache
from repro.harness.figures import FIGURES, matrix_specs
from repro.harness.sweep import ResultStore, SweepRunner
from repro.workloads.profile import FUNCTIONS

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def selected_functions():
    wanted = os.environ.get("REPRO_BENCH_FUNCTIONS")
    if not wanted:
        return list(FUNCTIONS)
    names = {name.strip() for name in wanted.split(",")}
    return [p for p in FUNCTIONS if p.name in names]


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    store = None
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if cache_dir and not os.environ.get("REPRO_BENCH_NO_CACHE"):
        store = ResultStore(cache_dir)
    cache = ResultCache(store=store)
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    if jobs > 1:
        # Pre-sweep the whole figure matrix in parallel; the benchmarks
        # then read every cell straight out of the warm cache.  The
        # supervisor checkpoints each cell as it finishes, so a killed
        # bench run resumes from the store instead of starting over.
        timeout_env = os.environ.get("REPRO_BENCH_TIMEOUT")
        runner = SweepRunner(
            cache, jobs=jobs,
            timeout=float(timeout_env) if timeout_env else None,
            max_retries=int(os.environ.get("REPRO_BENCH_MAX_RETRIES",
                                           "2") or "2"),
            keep_going=bool(os.environ.get("REPRO_BENCH_KEEP_GOING")))
        # The cluster figure's cells are whole fleet simulations no
        # benchmark consumes; prewarm only the figures measured here.
        figures = [f for f in FIGURES if f != "cluster"]
        runner.run(matrix_specs(figures=figures,
                                functions=selected_functions()))
        print(runner.last_stats.summary())
    return cache


@pytest.fixture(scope="session")
def functions():
    return selected_functions()


@pytest.fixture(scope="session")
def record():
    """Write a rendered table to results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
