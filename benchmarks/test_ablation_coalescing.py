"""Ablation A2 — §2.1: FaaSnap's region coalescing trades mmap count for
working-set-file inflation, "which can affect performance by amplifying
IO, which we verify by instrumenting the kernel using eBPF".

We sweep the gap threshold and reproduce both sides of the trade: region
count falls, read amplification (verified with the same eBPF capture
program SnapBPF uses, counting snapshot/WS pages entering the page
cache) rises.
"""

import pytest

from repro.baselines.faasnap import FaaSnap
from repro.harness.experiment import run_scenario
from repro.harness.spec import ScenarioSpec
from repro.harness.report import render_table
from repro.workloads.profile import profile_by_name

FUNCTION = "pagerank"  # scattered working set, lots of coalescible gaps
THRESHOLDS = (0, 4, 16, 64, 256)


def test_coalescing_sweep(benchmark, record):
    profile = profile_by_name(FUNCTION)

    def run():
        results = {}
        for threshold in THRESHOLDS:
            results[threshold] = run_scenario(
                ScenarioSpec(profile, "faasnap"),
                approach_factory=lambda kernel, t=threshold: FaaSnap(
                    kernel, gap_threshold=t))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["gap (pages)", "regions", "inflation", "bytes read (MiB)",
              "E2E (s)"]]
    for threshold in THRESHOLDS:
        r = results[threshold]
        table.append([str(threshold), f"{r.extra['region_count']:.0f}",
                      f"{r.extra['inflation_ratio']:.3f}",
                      f"{r.device_bytes_read / (1 << 20):.1f}",
                      f"{r.mean_e2e:.3f}"])
    record("ablation_coalescing", render_table(
        table, title=f"A2: FaaSnap coalescing sweep ({FUNCTION})"))

    regions = [results[t].extra["region_count"] for t in THRESHOLDS]
    inflation = [results[t].extra["inflation_ratio"] for t in THRESHOLDS]
    # Larger thresholds: monotonically fewer regions...
    assert all(a >= b for a, b in zip(regions, regions[1:]))
    # ...but monotonically more I/O-amplifying inflation.
    assert all(a <= b for a, b in zip(inflation, inflation[1:]))
    assert inflation[0] == pytest.approx(1.0)
    assert inflation[-1] > 1.5
    # The amplification reaches the device.
    assert (results[THRESHOLDS[-1]].device_bytes_read
            > 1.2 * results[0].device_bytes_read)
