"""Ablation A4 — §4 Methodology: the Linux-RA baseline uses the default
128 KiB (32-page) readahead window.  Sweeping the window shows why no
static window competes with working-set-aware prefetching: small windows
leave latency on the table, large windows amplify I/O on scattered
working sets.
"""

from repro.baselines.linux import _LinuxBase
from repro.harness.experiment import run_scenario
from repro.harness.spec import ScenarioSpec
from repro.harness.report import render_table
from repro.workloads.profile import profile_by_name

FUNCTION = "pagerank"
WINDOWS = (0, 8, 32, 128, 256)


def make_variant(window: int):
    class LinuxWindow(_LinuxBase):
        name = "linux-ra"
        ra_pages = window
    return LinuxWindow


def test_readahead_window_sweep(benchmark, cache, record):
    profile = profile_by_name(FUNCTION)

    def run():
        spec = ScenarioSpec(profile, "linux-ra")
        results = {w: run_scenario(spec,
                                   approach_factory=make_variant(w))
                   for w in WINDOWS}
        results["snapbpf"] = cache.get(ScenarioSpec(profile, "snapbpf"))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["window (pages)", "E2E (s)", "bytes read (MiB)",
              "I/O requests"]]
    for key in list(WINDOWS) + ["snapbpf"]:
        r = results[key]
        table.append([str(key), f"{r.mean_e2e:.3f}",
                      f"{r.device_bytes_read / (1 << 20):.1f}",
                      str(r.device_requests)])
    record("ablation_readahead", render_table(
        table, title=f"A4: readahead window sweep ({FUNCTION})"))

    # No-readahead pays maximal latency with minimal bytes.
    assert results[0].mean_e2e == max(results[w].mean_e2e for w in WINDOWS)
    assert results[0].device_bytes_read == min(
        results[w].device_bytes_read for w in WINDOWS)
    # Bigger windows monotonically amplify bytes read.
    volumes = [results[w].device_bytes_read for w in WINDOWS]
    assert all(a <= b for a, b in zip(volumes, volumes[1:]))
    # And no static window beats SnapBPF's exact prefetch.
    best_static = min(results[w].mean_e2e for w in WINDOWS)
    assert results["snapbpf"].mean_e2e < best_static
