"""Ablation A3 — the §4 KVM anecdote: stock KVM "would under certain
circumstances forcibly handle read nested page faults as write", CoWing
shared page-cache pages to anonymous memory and diminishing the
deduplication benefits.  The paper's patch write-maps opportunistically
(only already-writable pages).
"""

from repro.core.approach import SnapBPF
from repro.harness.experiment import run_scenario
from repro.harness.report import render_table
from repro.harness.spec import ScenarioSpec
from repro.workloads.profile import profile_by_name

FUNCTION = "bfs"
INSTANCES = 10


def test_patched_vs_stock_kvm(benchmark, record):
    profile = profile_by_name(FUNCTION)
    spec = ScenarioSpec(profile, "snapbpf", n_instances=INSTANCES)

    def run():
        patched = run_scenario(
            spec, approach_factory=lambda k: SnapBPF(k, patched_cow=True))
        stock = run_scenario(
            spec, approach_factory=lambda k: SnapBPF(k, patched_cow=False))
        return patched, stock

    patched, stock = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["KVM", "peak memory (GiB)", "mean E2E (s)"],
             ["patched (opportunistic write-map)",
              f"{patched.peak_memory_gib:.2f}", f"{patched.mean_e2e:.3f}"],
             ["stock (forced write-map)",
              f"{stock.peak_memory_gib:.2f}", f"{stock.mean_e2e:.3f}"]]
    record("ablation_kvm_cow", render_table(
        table, title=f"A3: KVM CoW patch ({FUNCTION}, "
                     f"{INSTANCES} instances)"))

    # Forced CoW inflates memory enough to diminish deduplication.
    assert stock.peak_memory_bytes > 1.5 * patched.peak_memory_bytes
