"""§4 "SnapBPF Overheads": loading the grouped offsets into the kernel
via the eBPF map costs ~1-2 ms — under 1% of E2E latency on average."""

import statistics

from repro.harness.figures import overheads
from repro.harness.report import render_figure


def test_overheads(benchmark, cache, functions, record):
    data = benchmark.pedantic(
        lambda: overheads(cache, functions=functions),
        rounds=1, iterations=1)
    record("overheads", render_figure(data))

    fractions = data.series["fraction_of_e2e"]
    load_ms = data.series["map_load_ms"]
    assert statistics.fmean(fractions) < 0.01, "mean offset-load > 1% of E2E"
    assert all(ms < 5.0 for ms in load_ms), "offset load above ms scale"
    assert all(ms > 0.0 for ms in load_ms)
