"""Figure 4: breakdown of the two SnapBPF mechanisms.

Paper shape: PV PTE marking alone gives large wins for allocation-heavy
functions (image: >2x) and little for functions dominated by initialized
state (rnn, bert); eBPF prefetching supplies the rest.
"""

from repro.harness.figures import figure_4
from repro.harness.report import render_figure


def test_fig4(benchmark, cache, functions, record):
    data = benchmark.pedantic(
        lambda: figure_4(cache, functions=functions),
        rounds=1, iterations=1)
    record("fig4", render_figure(data))

    for function in data.functions:
        assert data.value(function, "linux-ra") == 1.0
        # Each mechanism only ever helps.
        assert data.value(function, "pv-ptes") <= 1.02
        assert (data.value(function, "snapbpf")
                <= data.value(function, "pv-ptes") + 0.02)

    # Allocation-heavy: PV alone improves image by more than 2x.
    if "image" in data.functions:
        assert data.value("image", "pv-ptes") < 0.55

    # Model-serving functions benefit only minimally from PV alone...
    for function in ("rnn", "bert"):
        if function in data.functions:
            assert data.value(function, "pv-ptes") > 0.85
            # ...there, optimized prefetching is the dominant factor.
            assert data.value(function, "snapbpf") < 0.6
