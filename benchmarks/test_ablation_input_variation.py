"""Extension — the study §4 defers to future work: "the effect of
varying function inputs on SnapBPF's memory deduplication".

Concurrent instances receive *different* inputs; ~15% of each working
set is input-dependent (repro.workloads.profile.input_ws_frac).  The
expectation the paper implies: deduplication degrades only for the
input-dependent fraction, because the input-invariant bulk (code,
models) still shares page-cache frames; REAP stays flat at its already
worst-case memory.
"""

from repro.harness.experiment import run_scenario
from repro.harness.report import render_table
from repro.harness.spec import ScenarioSpec
from repro.workloads.profile import profile_by_name

FUNCTION = "rnn"
INSTANCES = 10


def test_varying_inputs_dedup(benchmark, record):
    profile = profile_by_name(FUNCTION)

    def run():
        out = {}
        for approach in ("snapbpf", "reap"):
            out[(approach, "identical")] = run_scenario(ScenarioSpec(
                function=profile, approach=approach,
                n_instances=INSTANCES))
            out[(approach, "varying")] = run_scenario(ScenarioSpec(
                function=profile, approach=approach,
                n_instances=INSTANCES, vary_inputs=True))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["approach", "inputs", "peak memory (GiB)", "mean E2E (s)"]]
    for (approach, inputs), r in sorted(results.items()):
        table.append([approach, inputs, f"{r.peak_memory_gib:.2f}",
                      f"{r.mean_e2e:.3f}"])
    record("ablation_input_variation", render_table(
        table, title=f"Future-work study: input variation ({FUNCTION}, "
                     f"{INSTANCES} instances)"))

    snap_same = results[("snapbpf", "identical")].peak_memory_bytes
    snap_vary = results[("snapbpf", "varying")].peak_memory_bytes
    reap_same = results[("reap", "identical")].peak_memory_bytes
    reap_vary = results[("reap", "varying")].peak_memory_bytes

    # Varying inputs cost some sharing, bounded by the input-dependent
    # working-set fraction (plus its CoW) — not a collapse to REAP.
    assert snap_same < snap_vary < 0.8 * reap_vary
    # REAP had nothing to lose.
    assert abs(reap_vary - reap_same) < 0.25 * reap_same
