"""Extension — §4's second future-work item: "a comprehensive analysis
of the computational and memory costs of SnapBPF".

Two sensitivity sweeps isolate SnapBPF's own computational costs:

* scaling *only* the BPF-side costs (map updates, program attach) shows
  the mechanism stays I/O-bound — even 10x costlier eBPF plumbing moves
  E2E latency by only a few percent;
* scaling the whole CPU cost model shows where each design carries its
  CPU work: REAP's copies run on parallel handler threads and partially
  hide, while SnapBPF's per-page costs sit on the vCPU's own fault path
  — which is exactly why the kernel-space work must stay tiny (and the
  paper measures it at <1 % of E2E).
"""

import dataclasses

from repro.harness.experiment import run_scenario
from repro.harness.report import render_table
from repro.harness.spec import ScenarioSpec
from repro.mm.costs import CostModel
from repro.workloads.profile import profile_by_name

FUNCTION = "rnn"


def scale_bpf_costs(costs: CostModel, factor: float) -> CostModel:
    return dataclasses.replace(
        costs,
        bpf_map_update=costs.bpf_map_update * factor,
        bpf_map_lookup=costs.bpf_map_lookup * factor,
        bpf_prog_attach=costs.bpf_prog_attach * factor)


def test_cost_sensitivity(benchmark, record):
    profile = profile_by_name(FUNCTION)

    def run():
        out = {}
        base = CostModel()
        for factor in (1.0, 10.0):
            out[("bpf", factor)] = run_scenario(ScenarioSpec(
                function=profile, approach="snapbpf",
                costs=scale_bpf_costs(base, factor)))
        for approach in ("snapbpf", "reap"):
            for factor in (1.0, 4.0):
                out[(approach, factor)] = run_scenario(ScenarioSpec(
                    function=profile, approach=approach,
                    costs=base.scaled(factor)))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["sweep", "factor", "E2E (s)"],
             ["bpf-only (snapbpf)", "1x",
              f"{results[('bpf', 1.0)].mean_e2e:.3f}"],
             ["bpf-only (snapbpf)", "10x",
              f"{results[('bpf', 10.0)].mean_e2e:.3f}"],
             ["all CPU (snapbpf)", "4x",
              f"{results[('snapbpf', 4.0)].mean_e2e:.3f}"],
             ["all CPU (reap)", "4x",
              f"{results[('reap', 4.0)].mean_e2e:.3f}"]]
    record("ablation_cost_model", render_table(
        table, title=f"Cost-model sensitivity ({FUNCTION})"))

    # 10x costlier eBPF plumbing barely moves SnapBPF (I/O-bound).
    bpf_delta = (results[("bpf", 10.0)].mean_e2e
                 / results[("bpf", 1.0)].mean_e2e)
    assert bpf_delta < 1.10, f"bpf-cost sensitivity {bpf_delta:.2f}"

    # At realistic CPU costs, SnapBPF wins; at 4x both degrade and the
    # gap narrows, because SnapBPF's per-page costs (nested fault +
    # minor fault) ride the vCPU while REAP hides copies on handler
    # threads.  Both statements must hold for the analysis to be told
    # honestly.
    assert (results[("snapbpf", 1.0)].mean_e2e
            < results[("reap", 1.0)].mean_e2e)
    gap_1x = (results[("reap", 1.0)].mean_e2e
              / results[("snapbpf", 1.0)].mean_e2e)
    gap_4x = (results[("reap", 4.0)].mean_e2e
              / results[("snapbpf", 4.0)].mean_e2e)
    assert gap_4x < gap_1x
