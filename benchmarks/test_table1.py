"""Table 1: mechanism comparison, regenerated from the implementations."""

from repro.harness.figures import table_1
from repro.harness.report import render_table1


def test_table1(benchmark, record):
    rows = benchmark.pedantic(table_1, rounds=1, iterations=1)
    record("table1", render_table1(rows))

    by_name = {row["approach"]: row for row in rows}
    # The paper's Table 1, row by row.
    assert by_name["reap"] == {
        "approach": "reap", "mechanism": "userfaultfd",
        "space": "User-space", "on_disk_ws_serialization": "Yes",
        "in_memory_ws_dedup": "No", "stateless_alloc_filtering": "No",
        "snapshot_prescan": "No"}
    assert by_name["faast"]["stateless_alloc_filtering"] == "Yes"
    assert by_name["faast"]["snapshot_prescan"] == "Yes"
    assert by_name["faasnap"] == {
        "approach": "faasnap", "mechanism": "mincore / mmap",
        "space": "User-space", "on_disk_ws_serialization": "Yes",
        "in_memory_ws_dedup": "Yes", "stateless_alloc_filtering": "Yes",
        "snapshot_prescan": "Yes"}
    assert by_name["snapbpf"] == {
        "approach": "snapbpf", "mechanism": "eBPF",
        "space": "Kernel-space", "on_disk_ws_serialization": "No",
        "in_memory_ws_dedup": "Yes", "stateless_alloc_filtering": "Yes",
        "snapshot_prescan": "No"}
