"""Extension — node-level evaluation: what SnapBPF's wins mean for a
provider host serving a function mix under Poisson traffic.

Not a paper figure; this composes the reproduced mechanisms at the scale
the paper's introduction motivates (bursty cold starts on multi-tenant
hosts) and checks that the per-scenario advantages survive: lower
cold-start tail latency and lower node memory than REAP, with identical
warm-path behaviour.
"""

from repro.harness.experiment import make_kernel
from repro.harness.report import render_table
from repro.platform import FaaSNode, poisson_arrivals
from repro.workloads.profile import profile_by_name

MIX = [(profile_by_name("html"), 1.2), (profile_by_name("json"), 0.8),
       (profile_by_name("chameleon"), 0.4), (profile_by_name("rnn"), 0.2)]
DURATION = 20.0
WARM_TTL = 2.0


def test_node_under_mixed_traffic(benchmark, record):
    def run():
        out = {}
        for approach in ("reap", "snapbpf"):
            node = FaaSNode(make_kernel(), approach,
                            [p for p, _r in MIX], warm_pool_ttl=WARM_TTL)
            arrivals = poisson_arrivals(MIX, duration=DURATION, seed=42)
            out[approach] = node.run(arrivals)
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["approach", "requests", "cold", "cold p50 (ms)",
              "cold p99 (ms)", "peak mem (GiB)"]]
    for approach, report in reports.items():
        table.append([
            approach, str(len(report.results)), str(report.cold_starts),
            f"{report.percentile(50, cold=True) * 1e3:.1f}",
            f"{report.percentile(99, cold=True) * 1e3:.1f}",
            f"{report.peak_memory_bytes / (1 << 30):.2f}"])
    record("platform_node", render_table(
        table, title=f"Node study: {DURATION:.0f}s Poisson mix, "
                     f"warm TTL {WARM_TTL}s"))

    reap, snapbpf = reports["reap"], reports["snapbpf"]
    # The same traffic hits both nodes.
    assert len(reap.results) == len(snapbpf.results)
    # SnapBPF: better cold-start tail and lower node memory.
    assert (snapbpf.percentile(99, cold=True)
            < reap.percentile(99, cold=True))
    assert snapbpf.percentile(50, cold=True) < reap.percentile(50, cold=True)
    assert snapbpf.peak_memory_bytes < reap.peak_memory_bytes
    # Warm starts are approach-independent (no restore involved).
    if reap.warm_starts and snapbpf.warm_starts:
        assert (abs(reap.percentile(50, cold=False)
                    - snapbpf.percentile(50, cold=False))
                < 0.5 * reap.percentile(50, cold=False))
