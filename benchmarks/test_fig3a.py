"""Figure 3a: E2E latency for a single function instance.

Paper shape: SnapBPF outperforms REAP (no userspace-to-kernel copies via
userfaultfd) and matches — in some cases outperforms — FaaSnap.
"""

from repro.harness.figures import figure_3a
from repro.harness.report import render_figure


def test_fig3a(benchmark, cache, functions, record):
    data = benchmark.pedantic(
        lambda: figure_3a(cache, functions=functions),
        rounds=1, iterations=1)
    record("fig3a", render_figure(data))

    for function in data.functions:
        snapbpf = data.value(function, "snapbpf")
        reap = data.value(function, "reap")
        faasnap = data.value(function, "faasnap")
        # SnapBPF at least matches REAP (within measurement slack) ...
        assert snapbpf < 1.10 * reap, (
            f"{function}: snapbpf {snapbpf:.3f}s vs reap {reap:.3f}s")
        # ... and matches FaaSnap.
        assert snapbpf < 1.15 * faasnap, (
            f"{function}: snapbpf {snapbpf:.3f}s vs faasnap {faasnap:.3f}s")

    # On large-working-set functions SnapBPF strictly wins against REAP.
    for function in ("recognition", "rnn", "bfs", "bert"):
        if function in data.functions:
            assert (data.value(function, "snapbpf")
                    < data.value(function, "reap"))
