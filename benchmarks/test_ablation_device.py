"""Ablation A1 — §3.1's key insight: "modern SSDs relax the need for
sequential I/O".

SnapBPF prefetches scattered offset groups straight from the snapshot
file; REAP streams a separately serialized, fully sequential working-set
file.  On the SSD the metadata-only design is competitive (and wins by
skipping the serialization); on a spindle HDD every discontiguity costs
a seek, and the serialized-WS baseline wins decisively — quantifying why
the design is only now viable.
"""

from repro.harness.report import render_table
from repro.harness.spec import ScenarioSpec
from repro.workloads.profile import profile_by_name

FUNCTION = "pagerank"  # mid-sized working set with short scattered runs


def test_ssd_vs_hdd(benchmark, cache, record):
    profile = profile_by_name(FUNCTION)

    def run():
        rows = {}
        for device in ("ssd", "hdd"):
            for approach in ("reap", "snapbpf"):
                rows[(device, approach)] = cache.get(ScenarioSpec(
                    profile, approach, device_kind=device))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [["device", "approach", "E2E (s)", "I/O requests"]]
    for (device, approach), result in sorted(rows.items()):
        table.append([device, approach, f"{result.mean_e2e:.3f}",
                      str(result.device_requests)])
    record("ablation_device", render_table(
        table, title=f"A1: storage-device ablation ({FUNCTION}, "
                     f"1 instance)"))

    ssd_gap = (rows[("ssd", "snapbpf")].mean_e2e
               / rows[("ssd", "reap")].mean_e2e)
    hdd_gap = (rows[("hdd", "snapbpf")].mean_e2e
               / rows[("hdd", "reap")].mean_e2e)
    # On the SSD, metadata-only prefetch matches/beats the serialized WS.
    assert ssd_gap < 1.05
    # On the HDD, scattered reads lose badly to the sequential WS file.
    assert hdd_gap > 2.0
    # And the crossover: moving to HDD hurts SnapBPF far more than REAP.
    assert hdd_gap > 2 * ssd_gap
