"""Figure 3c: system-wide memory for 10 concurrent instances.

Paper shape: userfaultfd-based REAP cannot deduplicate working sets
across sandboxes, so memory scales with the instance count; SnapBPF (and
the vanilla page-cache restores) keep one shared copy.  Reduction is up
to ~6x for the large-working-set functions (bfs, bert).
"""

from repro.harness.figures import figure_3b, figure_3c
from repro.harness.report import render_figure


def test_fig3c(benchmark, cache, functions, record):
    # Shares every scenario run with Figure 3b (same experiment).
    figure_3b(cache, functions=functions)
    before = len(cache)
    data = benchmark.pedantic(
        lambda: figure_3c(cache, functions=functions),
        rounds=1, iterations=1)
    assert len(cache) == before, "3c must reuse 3b's runs"
    record("fig3c", render_figure(data))

    for function in data.functions:
        assert (data.value(function, "snapbpf")
                < data.value(function, "reap"))

    for function in ("bfs", "bert"):
        if function in data.functions:
            ratio = (data.value(function, "reap")
                     / data.value(function, "snapbpf"))
            assert ratio > 3.5, f"{function}: only {ratio:.1f}x reduction"
