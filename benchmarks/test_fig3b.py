"""Figure 3b: E2E latency for 10 concurrent instances (identical inputs),
normalized to Linux-NoRA.

Paper shape: SnapBPF beats vanilla firecracker (both readahead settings)
and REAP; for large-working-set functions (bert) REAP is ~8x slower than
SnapBPF because every instance re-reads and re-installs a private copy
of the working set.
"""

from repro.harness.figures import figure_3b
from repro.harness.report import render_figure


def test_fig3b(benchmark, cache, functions, record):
    data = benchmark.pedantic(
        lambda: figure_3b(cache, functions=functions),
        rounds=1, iterations=1)
    record("fig3b", render_figure(data))

    for function in data.functions:
        snapbpf = data.value(function, "snapbpf")
        # SnapBPF beats vanilla firecracker with and without readahead...
        assert snapbpf < data.value(function, "linux-nora") == 1.0
        assert snapbpf < data.value(function, "linux-ra")
        # ...and REAP.
        assert snapbpf < data.value(function, "reap")

    # The headline: bert is several times slower on REAP (paper: 8x).
    if "bert" in data.functions:
        ratio = data.value("bert", "reap") / data.value("bert", "snapbpf")
        assert ratio > 4.0, f"bert REAP/SnapBPF ratio {ratio:.1f}x"
