#!/usr/bin/env python3
"""Model your own serverless function and see which prefetcher fits it.

FunctionProfile is the workload interface: describe a function by its
footprint shape and the harness runs the whole stack on it.  This
example sweeps the design space along two axes the paper's breakdown
(Figure 4) identifies — working-set size vs. ephemeral allocation volume
— and reports which SnapBPF mechanism carries each corner.

Run:
    python examples/custom_function.py
"""

from repro import MIB, FunctionProfile, ScenarioSpec, run_scenario


def make_profile(name: str, ws_mib: int, alloc_mib: int) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        mem_bytes=256 * MIB,
        ws_bytes=ws_mib * MIB,
        alloc_bytes=alloc_mib * MIB,
        compute_seconds=0.08,
        write_frac=0.10,
        run_len_mean=16.0,
        seed=7,
    )


def main() -> None:
    corners = [
        make_profile("lean-and-stateless", ws_mib=8, alloc_mib=4),
        make_profile("alloc-heavy", ws_mib=8, alloc_mib=96),
        make_profile("state-heavy", ws_mib=96, alloc_mib=4),
        make_profile("heavyweight", ws_mib=96, alloc_mib=96),
    ]

    print(f"{'function':20s} {'linux-ra':>9s} {'pv-only':>9s} "
          f"{'snapbpf':>9s}   dominant mechanism")
    for profile in corners:
        ra = run_scenario(ScenarioSpec(profile, "linux-ra")).mean_e2e
        pv = run_scenario(ScenarioSpec(profile, "pv-ptes")).mean_e2e
        full = run_scenario(ScenarioSpec(profile, "snapbpf")).mean_e2e
        pv_gain = ra - pv
        prefetch_gain = pv - full
        dominant = ("PV PTE marking" if pv_gain > prefetch_gain
                    else "eBPF prefetching")
        print(f"{profile.name:20s} {ra * 1e3:8.1f}ms {pv * 1e3:8.1f}ms "
              f"{full * 1e3:8.1f}ms   {dominant}")

    print("\nReading the corners like Figure 4: allocation-heavy "
          "functions are carried by PV PTE marking; state-heavy ones by "
          "the eBPF working-set prefetch; both compose for heavyweight "
          "functions.")


if __name__ == "__main__":
    main()
