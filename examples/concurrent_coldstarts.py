#!/usr/bin/env python3
"""Concurrent cold starts: the paper's motivating scenario (Figures
3b/3c).

Ten sandboxes of the same function spawn at the same instant — a burst
of requests hitting a scaled-to-zero function.  Userfaultfd-based
prefetching (REAP) installs ten private copies of the working set; the
page-cache-based approaches (and SnapBPF) share one.

Run:
    python examples/concurrent_coldstarts.py [function] [instances]
"""

import sys

from repro import GIB, MIB, ScenarioSpec, profile_by_name, run_scenario


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    instances = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    profile = profile_by_name(name)
    print(f"{instances} concurrent instances of {profile.name!r} "
          f"({profile.ws_bytes // MIB} MiB working set), "
          f"identical inputs\n")

    baseline = None
    for approach in ("linux-nora", "linux-ra", "reap", "snapbpf"):
        result = run_scenario(ScenarioSpec(profile, approach,
                                           n_instances=instances))
        if baseline is None:
            baseline = result.mean_e2e
        print(f"{approach:12s} mean E2E {result.mean_e2e:7.3f} s "
              f"(x{result.mean_e2e / baseline:5.2f} of Linux-NoRA) | "
              f"peak memory {result.peak_memory_bytes / GIB:5.2f} GiB | "
              f"read {result.device_bytes_read / GIB:5.2f} GiB")

    reap = run_scenario(ScenarioSpec(profile, "reap",
                                     n_instances=instances))
    snapbpf = run_scenario(ScenarioSpec(profile, "snapbpf",
                                        n_instances=instances))
    print(f"\nSnapBPF vs REAP at {instances}x concurrency: "
          f"{reap.mean_e2e / snapbpf.mean_e2e:.1f}x lower latency, "
          f"{reap.peak_memory_bytes / snapbpf.peak_memory_bytes:.1f}x "
          f"lower memory (paper reports 8x / 6x for the largest "
          f"functions).")


if __name__ == "__main__":
    main()
