#!/usr/bin/env python3
"""Quickstart: restore one serverless function with SnapBPF and compare
it against REAP — the paper's Figure 3a, in one script.

Run:
    python examples/quickstart.py [function]

The function defaults to ``rnn``; any of the 13 evaluated functions
works (``json``, ``chameleon``, ``matmul``, ``pyaes``, ``image``,
``compression``, ``video``, ``recognition``, ``pagerank``, ``rnn``,
``html``, ``bfs``, ``bert``).
"""

import sys

from repro import MIB, ScenarioSpec, profile_by_name, run_scenario


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rnn"
    profile = profile_by_name(name)
    print(f"Function {profile.name!r}: {profile.mem_bytes // MIB} MiB VM, "
          f"{profile.ws_bytes // MIB} MiB working set, "
          f"{profile.alloc_bytes // MIB} MiB ephemeral allocations\n")

    for approach in ("linux-nora", "linux-ra", "reap", "faasnap",
                     "snapbpf"):
        result = run_scenario(ScenarioSpec(profile, approach,
                                           n_instances=1))
        invocation = result.invocations[0]
        print(f"{approach:12s} E2E {result.mean_e2e * 1e3:8.1f} ms | "
              f"read {result.device_bytes_read / MIB:7.1f} MiB in "
              f"{result.device_requests:5d} requests | "
              f"peak mem {result.peak_memory_bytes / MIB:7.1f} MiB | "
              f"{invocation.nested_faults:6d} nested faults")

    snapbpf = run_scenario(ScenarioSpec(profile, "snapbpf"))
    print(f"\nSnapBPF stored {snapbpf.extra['metadata_bytes']:.0f} bytes of "
          f"offset metadata instead of a "
          f"{profile.ws_bytes // MIB} MiB working-set file, and loaded it "
          f"into the kernel in "
          f"{snapbpf.extra['map_load_seconds'] * 1e3:.2f} ms.")


if __name__ == "__main__":
    main()
