#!/usr/bin/env python3
"""Where does a cold start spend its time?

Decomposes E2E invocation latency into the paper's implicit budget:
restore setup (mmap/uffd/map loading), useful compute, fault-handling
CPU, and — the part prefetching exists to hide — wall time *stalled* on
I/O or userspace fault handlers.

Run:
    python examples/latency_breakdown.py [function]
"""

import sys

from repro import ScenarioSpec, profile_by_name, run_scenario


def bar(fraction: float, width: int = 28) -> str:
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bert"
    profile = profile_by_name(name)
    print(f"Cold-start latency breakdown for {profile.name!r} "
          f"(single instance)\n")

    for approach in ("linux-nora", "linux-ra", "reap", "faasnap",
                     "snapbpf"):
        result = run_scenario(ScenarioSpec(profile, approach))
        inv = result.invocations[0]
        e2e = inv.e2e_seconds
        print(f"[{approach}]  E2E {e2e * 1e3:.1f} ms")
        for part, seconds in inv.breakdown.items():
            fraction = seconds / e2e if e2e else 0.0
            print(f"  {part:15s} {seconds * 1e3:9.2f} ms "
                  f"|{bar(fraction)}| {fraction * 100:5.1f}%")
        accounted = sum(inv.breakdown.values())
        print(f"  {'(other/queue)':15s} "
              f"{(e2e - accounted) * 1e3:9.2f} ms\n")

    print("Reading: Linux-NoRA is one long stall; readahead converts "
          "stall into overlap; REAP moves work to handler threads but "
          "still stalls on uffd round trips; SnapBPF's stall bar is what "
          "the kfunc prefetch could not hide.")


if __name__ == "__main__":
    main()
