#!/usr/bin/env python3
"""Why now?  The storage-device study behind the paper's key insight.

§3.1: "modern SSDs relax the need for sequential I/O.  This allows us to
skip the serialization of the function working set to storage as a
separate file."  This example runs the same function on the SATA SSD
model and on a 7200 rpm spindle HDD: on the spindle, SnapBPF's scattered
metadata-driven reads lose badly to REAP's sequential working-set file —
the design only became viable with flash.

Run:
    python examples/device_study.py [function]
"""

import sys

from repro import MIB, ScenarioSpec, profile_by_name, run_scenario


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rnn"
    profile = profile_by_name(name)
    print(f"Function {profile.name!r}, single cold start, "
          f"{profile.ws_bytes // MIB} MiB working set\n")

    for device in ("ssd", "hdd"):
        reap = run_scenario(ScenarioSpec(profile, "reap",
                                         device_kind=device))
        snapbpf = run_scenario(ScenarioSpec(profile, "snapbpf",
                                            device_kind=device))
        winner = "SnapBPF" if snapbpf.mean_e2e <= reap.mean_e2e else "REAP"
        print(f"[{device.upper()}]")
        print(f"  REAP    (sequential WS file): {reap.mean_e2e:8.3f} s "
              f"({reap.device_requests} requests)")
        print(f"  SnapBPF (scattered groups):   {snapbpf.mean_e2e:8.3f} s "
              f"({snapbpf.device_requests} requests)")
        print(f"  -> {winner} wins by "
              f"{max(reap.mean_e2e, snapbpf.mean_e2e) / min(reap.mean_e2e, snapbpf.mean_e2e):.1f}x\n")

    print("The crossover is the paper's 'why now': with seek-free flash, "
          "skipping working-set serialization costs (almost) nothing and "
          "buys page-cache deduplication for free.")


if __name__ == "__main__":
    main()
