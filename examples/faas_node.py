#!/usr/bin/env python3
"""A serverless node under mixed Poisson traffic.

The paper measures one function at a time; this example runs a
provider-style node: four functions with different arrival rates and a
short warm-pool TTL, so cold starts happen exactly when the keep-alive
pool misses.  It compares REAP against SnapBPF on the metrics a platform
team cares about — cold-start p50/p99 and node memory.

Run:
    python examples/faas_node.py [duration_seconds]
"""

import sys

from repro import GIB, MIB, make_kernel, profile_by_name
from repro.platform import FaaSNode, poisson_arrivals

MIX = [
    (profile_by_name("html"), 1.2),       # chatty front-end function
    (profile_by_name("json"), 0.8),
    (profile_by_name("chameleon"), 0.4),
    (profile_by_name("rnn"), 0.2),        # heavyweight model serving
]
WARM_TTL = 2.0  # seconds — aggressive scale-down, plenty of cold starts


def run_node(approach: str, duration: float):
    node = FaaSNode(make_kernel(), approach,
                    [profile for profile, _rate in MIX],
                    warm_pool_ttl=WARM_TTL)
    arrivals = poisson_arrivals(MIX, duration=duration, seed=42)
    return arrivals, node.run(arrivals)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    print(f"Simulating {duration:.0f}s of Poisson traffic over "
          f"{len(MIX)} functions (warm-pool TTL {WARM_TTL}s)\n")

    for approach in ("reap", "snapbpf"):
        arrivals, report = run_node(approach, duration)
        print(f"[{approach}] {len(arrivals)} requests, "
              f"{report.cold_starts} cold / {report.warm_starts} warm")
        print(f"  cold-start latency: "
              f"p50 {report.percentile(50, cold=True) * 1e3:7.1f} ms, "
              f"p99 {report.percentile(99, cold=True) * 1e3:7.1f} ms")
        print(f"  all-request latency: "
              f"p50 {report.percentile(50) * 1e3:7.1f} ms, "
              f"p99 {report.percentile(99) * 1e3:7.1f} ms")
        print(f"  node peak memory: "
              f"{report.peak_memory_bytes / GIB:5.2f} GiB "
              f"({max(s.bytes_in_use for s in report.memory_timeline) / MIB:,.0f} MiB sampled)\n")


if __name__ == "__main__":
    main()
