#!/usr/bin/env python3
"""eBPF playground: drive the miniature eBPF subsystem directly.

Shows the three layers SnapBPF is built on:
  1. writing a program in the assembly and watching the verifier reject
     unsafe variants (unchecked map lookups, unregistered kfuncs),
  2. attaching a capture program to the ``add_to_page_cache_lru`` kprobe
     and observing what the kernel reports on each page-cache insertion,
  3. grouping the captured offsets the way SnapBPF's VMM does (§3.1).

Run:
    python examples/ebpf_playground.py
"""

from repro import MIB, make_kernel
from repro.core.grouping import group_offsets
from repro.core.progs import build_capture_program, make_events_ringbuf
from repro.ebpf.asm import assemble, call, exit_, load, movi
from repro.ebpf.insn import R0, R1, R3
from repro.ebpf.verifier import VerificationError, Verifier
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE, HOOK_CTX_SIZE


def show_verifier_rejections() -> None:
    print("=== 1. The verifier sandbox ===")
    unchecked = assemble("unchecked-lookup", [
        movi(R0, 0),
        # Dereference the context at offset 64 (ctx is 16 bytes).
        load(R3, R1, 64),
        exit_(),
    ])
    try:
        Verifier(ctx_size=HOOK_CTX_SIZE).verify(unchecked)
    except VerificationError as exc:
        print(f"  out-of-bounds ctx read rejected: {exc}")

    from repro.ebpf.asm import call_kfunc
    rogue = assemble("rogue-kfunc", [
        movi(R1, 1),
        call_kfunc("submit_bio"),  # no such kfunc is exposed
        movi(R0, 0), exit_(),
    ])
    try:
        Verifier(ctx_size=HOOK_CTX_SIZE).verify(rogue)
    except VerificationError as exc:
        print(f"  direct block I/O from BPF rejected: {exc}")
    print("  => hence the paper's snapbpf_prefetch() kfunc.\n")


def capture_and_group() -> None:
    print("=== 2. Capture on add_to_page_cache_lru ===")
    kernel = make_kernel()
    snapshot = kernel.filestore.create("demo.snap", 16 * MIB)
    other = kernel.filestore.create("noise.dat", MIB)

    events = make_events_ringbuf("demo_events")
    capture = build_capture_program(snapshot.ino, events)
    kernel.kprobes.attach(HOOK_ADD_TO_PAGE_CACHE, capture)
    print(f"  capture program: {len(capture.insns)} instructions, "
          f"verified and attached")

    # Fault some pages in: two scattered ranges of the snapshot plus
    # noise from an unrelated file the program must filter out.
    space = kernel.spawn_space("demo")
    vma = space.mmap(snapshot.size_pages, file=snapshot, at=0x1000,
                     ra_pages=0)
    space.mmap(other.size_pages, file=other, at=0x9000, ra_pages=0)

    def toucher():
        for page in (100, 101, 102, 7, 8, 2000, 103):
            yield from space.handle_fault(0x1000 + page, False)
        yield from space.handle_fault(0x9000, False)  # noise file

    kernel.env.run(kernel.env.process(toucher()))

    entries = events.consume_u64s()
    print(f"  captured {len(entries)} offsets "
          f"(noise file filtered by inode): "
          f"{sorted(offset for offset, _ts in entries)}")

    groups = group_offsets(entries)
    print("  grouped + sorted by earliest access:")
    for group in groups:
        print(f"    pages [{group.start}, {group.end}) "
              f"first touched at {group.first_access_ns} ns")


def main() -> None:
    show_verifier_rejections()
    capture_and_group()


if __name__ == "__main__":
    main()
